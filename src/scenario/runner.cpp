#include "scenario/runner.hpp"

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "graph/snapshot.hpp"
#include "obs/run_metrics.hpp"
#include "scenario/checkpoint.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"
#include "sim/registry.hpp"
#include "traffic/traffic_engine.hpp"
#include "traffic/workload.hpp"

namespace faultroute::scenario {

namespace {

/// Decoded coordinates of a flat cell index (row-major, trial fastest).
struct CellCoords {
  std::size_t topology, p, router, workload;
  std::uint64_t trial;
};

CellCoords decode_cell(const ScenarioSpec& spec, std::uint64_t index) {
  CellCoords c{};
  c.trial = index % spec.trials;
  index /= spec.trials;
  c.workload = static_cast<std::size_t>(index % spec.workloads.size());
  index /= spec.workloads.size();
  c.router = static_cast<std::size_t>(index % spec.routers.size());
  index /= spec.routers.size();
  c.p = static_cast<std::size_t>(index % spec.p_values.size());
  index /= spec.p_values.size();
  c.topology = static_cast<std::size_t>(index);
  return c;
}

}  // namespace

RunSummary run_scenario(const ScenarioSpec& spec, Reporter& reporter) {
  return run_scenario(spec, reporter, RunOptions{});
}

RunSummary run_scenario(const ScenarioSpec& spec, Reporter& reporter,
                        const RunOptions& options) {
  validate_scenario(spec);
  if (options.shard_index == 0 || options.shard_count == 0 ||
      options.shard_index > options.shard_count) {
    // analyze:allow-throw-safety(option validation precedes the trial loops)
    throw std::invalid_argument("scenario shard: need 1 <= k <= n, got " +
                                std::to_string(options.shard_index) + "/" +
                                std::to_string(options.shard_count));
  }
  obs::PhaseProfiler* profiler =
      options.metrics != nullptr ? &options.metrics->profiler() : nullptr;
  const obs::PhaseProfiler::Scope scenario_scope(profiler, "scenario");

  // Fail-fast construction of every registry spec before any cell runs.
  std::vector<std::unique_ptr<Topology>> topologies;
  topologies.reserve(spec.topologies.size());
  for (const auto& topo_spec : spec.topologies) {
    topologies.push_back(sim::make_topology(topo_spec));
  }
  for (const auto& topology : topologies) {
    for (const auto& router : spec.routers) (void)sim::make_router(router, *topology);
  }
  std::vector<WorkloadConfig> workloads;
  workloads.reserve(spec.workloads.size());
  for (const auto& workload_spec : spec.workloads) {
    workloads.push_back(sim::make_workload(workload_spec));
  }
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    if (workloads[w].kind != WorkloadKind::kHotspot) continue;
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      if (workloads[w].hotspot_target >= topologies[t]->num_vertices()) {
        // analyze:allow-throw-safety(scenario validation precedes the trial loops)
        throw std::invalid_argument("workload '" + spec.workloads[w] + "': hotspot target " +
                                    std::to_string(workloads[w].hotspot_target) +
                                    " out of range for topology '" + spec.topologies[t] +
                                    "' (" + std::to_string(topologies[t]->num_vertices()) +
                                    " vertices)");
      }
    }
  }

  // Snapshot adjacencies are opened once per topology, before the parallel
  // loop, and shared read-only by every cell of that topology (absent
  // snapshots leave the per-cell resolve_adjacency fallback in charge).
  std::vector<std::unique_ptr<FlatAdjacency>> snapshots(topologies.size());
  if (!spec.snapshot_dir.empty()) {
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      snapshots[t] =
          open_snapshot_adjacency(spec.snapshot_dir, spec.topologies[t], *topologies[t]);
    }
  }

  const std::uint64_t cells = spec.num_cells();
  std::vector<CellResult> results(cells);

  // This process owns the cells of its shard (all of them by default).
  const auto owned = [&options](std::uint64_t index) {
    return index % options.shard_count == options.shard_index - 1;
  };

  // Resume: replay journaled cells into `results` verbatim and only run the
  // rest. Cells journaled for other shards are ignored, not replayed.
  std::optional<CheckpointJournal> journal;
  std::vector<char> cell_done(cells, 0);
  std::uint64_t resumed = 0;
  if (!options.checkpoint_path.empty()) {
    journal.emplace(options.checkpoint_path, spec);
    for (std::uint64_t i = 0; i < cells; ++i) {
      const auto& prior = journal->completed()[i];
      if (!prior.has_value() || !owned(i)) continue;
      results[i] = *prior;
      cell_done[i] = 1;
      ++resumed;
    }
  }
  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < cells; ++i) {
    if (owned(i) && cell_done[i] == 0) pending.push_back(i);
  }
  if (options.metrics != nullptr && resumed > 0) {
    obs::CounterRegistry& counters = options.metrics->counters();
    counters.add(counters.id("scenario.checkpoint.cells_resumed"), resumed);
  }

  parallel_index_loop(pending.size(), spec.threads, [&]() {
    return [&](std::size_t slot) {
      const std::uint64_t index = pending[slot];
      // One span per cell on the worker's own track; the engine's phase
      // scopes nest inside it ("cell-7/routing/...").
      const obs::PhaseProfiler::Scope cell_scope(profiler,
                                                 "cell-" + std::to_string(index));
      const auto coords = decode_cell(spec, index);
      const Topology& topology = *topologies[coords.topology];

      CellResult& cell = results[index];
      cell.cell = index;
      cell.topology = spec.topologies[coords.topology];
      cell.topology_name = topology.name();
      cell.vertices = topology.num_vertices();
      cell.p = spec.p_values[coords.p];
      cell.router = spec.routers[coords.router];
      cell.workload = spec.workloads[coords.workload];
      cell.trial = coords.trial;
      cell.env_seed = derive_seed(spec.seed, 2 * index);
      cell.workload_seed = derive_seed(spec.seed, 2 * index + 1);

      WorkloadConfig workload = workloads[coords.workload];
      workload.messages = spec.messages;
      workload.seed = cell.workload_seed;
      const auto messages = generate_workload(topology, workload);

      TrafficConfig config;
      config.edge_capacity = spec.edge_capacity;
      if (spec.probe_budget > 0) config.probe_budget = spec.probe_budget;
      config.max_steps = spec.max_steps;
      config.threads = 1;  // parallelism is across cells, not within one
      config.adjacency = parse_adjacency_mode(spec.adjacency);
      config.frontier = parse_frontier_mode(spec.frontier);
      config.flat_snapshot = snapshots[coords.topology].get();
      config.metrics = options.metrics;  // counters merge across cells; the
                                         // registry shards per worker thread
      TrafficPhaseTimings timings;
      if (options.cell_timings) config.timings = &timings;
      const HashEdgeSampler environment(cell.p, cell.env_seed);
      const auto factory = [&]() { return sim::make_router(cell.router, topology); };
      const TrafficResult traffic =
          run_traffic(topology, environment, factory, messages, config);

      cell.messages = traffic.messages;
      cell.routed = traffic.routed;
      cell.failed_routing = traffic.failed_routing;
      cell.censored = traffic.censored;
      cell.invalid_paths = traffic.invalid_paths;
      cell.delivered = traffic.delivered;
      cell.stranded = traffic.stranded;
      cell.total_distinct_probes = traffic.total_distinct_probes;
      cell.unique_edges_probed = traffic.unique_edges_probed;
      cell.cache_hits = traffic.cache_hits;
      cell.cache_misses = traffic.cache_misses;
      cell.probe_amortization = traffic.probe_amortization();
      cell.max_edge_load = traffic.max_edge_load;
      cell.mean_edge_load = traffic.mean_edge_load;
      cell.edges_used = traffic.edges_used;
      cell.makespan = traffic.makespan;
      cell.mean_queueing_delay = traffic.mean_queueing_delay;
      cell.max_queueing_delay = traffic.max_queueing_delay;
      cell.mean_path_edges = traffic.mean_path_edges;
      cell.throughput = traffic.throughput();
      cell.sim_steps = traffic.sim_steps;
      cell.admission_events = traffic.admission_events;
      cell.transmissions = traffic.transmissions;
      cell.peak_active_channels = traffic.peak_active_channels;
      cell.channels = traffic.channels;
      if (options.cell_timings) {
        cell.has_timings = true;
        cell.routing_ms = timings.routing_ms;
        cell.delivery_ms = timings.delivery_ms;
      }
      if (options.metrics != nullptr) {
        obs::CounterRegistry& counters = options.metrics->counters();
        counters.add(counters.id("scenario.cells"), 1);
      }
      if (journal.has_value()) journal->record(cell);
    };
  });

  // Owned cells only, ascending: a shard's report is the exact subsequence
  // of the single-process report, which is what makes merge a pure stitch.
  RunSummary summary;
  reporter.begin(spec);
  for (std::uint64_t i = 0; i < cells; ++i) {
    if (!owned(i)) continue;
    ++summary.cells;
    summary.messages += results[i].messages;
    summary.delivered += results[i].delivered;
    reporter.report(results[i]);
  }
  reporter.end();
  return summary;
}

}  // namespace faultroute::scenario
