#pragma once

#include <cstdint>
#include <vector>

namespace faultroute::obs {

/// Bounded per-step time-series of the delivery simulation.
///
/// The event engine offers one `record()` per executed timestep; the sampler
/// keeps every `stride()`-th offered step and, whenever the buffer reaches
/// its capacity, halves it (dropping the odd-indexed samples) and doubles the
/// stride. Memory is therefore O(max_samples) however many steps a run
/// simulates, the kept samples stay evenly spaced over the whole horizon, and
/// the very first step is always retained. Strides are powers of two, so a
/// decimated series is a prefix-preserving subsequence of a finer one.
///
/// Not thread-safe — the delivery phase is sequential by design. Purely
/// observational: the engine's behaviour is identical with or without a
/// sampler attached (pinned by tests/test_observability.cpp).
class DeliverySampler {
 public:
  /// `max_samples` is clamped to at least 2 (so decimation can always halve).
  explicit DeliverySampler(std::size_t max_samples = 4096);

  struct Sample {
    std::uint64_t time = 0;             ///< simulation timestep t
    std::uint64_t step = 0;             ///< executed-step ordinal (idle gaps skipped)
    std::uint64_t active_channels = 0;  ///< channels with a non-empty queue
    std::uint64_t queued = 0;           ///< messages waiting in channel FIFOs
    std::uint64_t in_transit = 0;       ///< messages arriving next step
    std::uint64_t injections = 0;       ///< fresh injections admitted this step
  };

  /// Offers one executed step; kept iff `steps_seen() % stride() == 0`.
  void record(const Sample& sample);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::uint64_t stride() const { return stride_; }
  [[nodiscard]] std::uint64_t steps_seen() const { return steps_seen_; }
  [[nodiscard]] std::size_t max_samples() const { return max_samples_; }

 private:
  std::size_t max_samples_;
  std::uint64_t stride_ = 1;
  std::uint64_t steps_seen_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace faultroute::obs
