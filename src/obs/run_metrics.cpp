#include "obs/run_metrics.hpp"

#include <cmath>
#include <cstdio>

#include "obs/build_info.hpp"

namespace faultroute::obs {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());  // analyze:allow-hot-alloc(reached only via name-based dispatch over-approximation of Marks::begin; emission is off the routing path)
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", value);
  return buffer;
}

}  // namespace

void RunMetrics::write_metrics_json(std::ostream& out, std::string_view command) const {
  out << "{\"schema\":\"" << kMetricsSchemaName
      << "\",\"schema_version\":" << kMetricsSchemaVersion << ",\"command\":\""
      << json_escape(command) << "\",\"provenance\":" << provenance_json("faultroute");

  // Run counters merged with the process-global registry (graph.* counters
  // live there because lazily-cached topology state has no run context).
  // Names are disjoint by convention; globals are appended after run
  // counters within one sorted-per-source object.
  out << ",\"counters\":{";
  bool first = true;
  const CounterRegistry* const registries[] = {&counters_, &global_registry()};
  for (const CounterRegistry* registry : registries) {
    for (const CounterRegistry::Entry& entry : registry->snapshot()) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(entry.name) << "\":" << entry.value;
    }
  }
  out << '}';

  out << ",\"phases\":[";
  first = true;
  for (const PhaseProfiler::PhaseStat& stat : profiler_.aggregate()) {
    if (!first) out << ',';
    first = false;
    out << "{\"path\":\"" << json_escape(stat.path) << "\",\"count\":" << stat.count
        << ",\"total_ms\":" << json_num(stat.total_ms) << '}';
  }
  out << ']';

  out << ",\"tracks\":[";
  first = true;
  for (const PhaseProfiler::Track& track : profiler_.tracks()) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":" << track.id << ",\"name\":\"" << json_escape(track.name) << "\"}";
  }
  out << ']';

  if (sampler_ != nullptr) {
    out << ",\"delivery_samples\":{\"stride\":" << sampler_->stride()
        << ",\"steps_seen\":" << sampler_->steps_seen()
        << ",\"max_samples\":" << sampler_->max_samples() << ",\"samples\":[";
    first = true;
    for (const DeliverySampler::Sample& s : sampler_->samples()) {
      if (!first) out << ',';
      first = false;
      out << "{\"t\":" << s.time << ",\"step\":" << s.step
          << ",\"active_channels\":" << s.active_channels << ",\"queued\":" << s.queued
          << ",\"in_transit\":" << s.in_transit << ",\"injections\":" << s.injections
          << '}';
    }
    out << "]}";
  }
  out << "}\n";
  out.flush();
}

void RunMetrics::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  // One process, one lane per profiler track: name the lanes first so the
  // viewer labels them before any span renders.
  for (const PhaseProfiler::Track& track : profiler_.tracks()) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track.id
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(track.name)
        << "\"}}";
  }
  for (const PhaseProfiler::Span& span : profiler_.spans()) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track << ",\"cat\":\"faultroute\""
        << ",\"name\":\"" << json_escape(span.path) << "\",\"ts\":" << json_num(span.start_us)
        << ",\"dur\":" << json_num(span.dur_us) << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  out.flush();
}

}  // namespace faultroute::obs
