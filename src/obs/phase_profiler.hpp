#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace faultroute::obs {

/// Nested wall-clock phase timing with per-thread tracks.
///
/// A PhaseProfiler generalizes the two-field TrafficPhaseTimings into
/// arbitrarily nested RAII scopes: opening a `Scope` starts a span on the
/// calling thread, destroying it records the span. Scopes nest — a scope
/// opened while another is live on the same thread becomes its child, and
/// the recorded span path joins the open names with '/'
/// ("cell-12/routing/route"). Each thread gets its own *track* (the trace
/// viewer's lane), assigned on first use, so a parallel_index_loop shows one
/// lane per worker.
///
/// Costs and guarantees: a scope is two steady_clock reads plus one
/// mutex-guarded vector append at close — meant for coarse phases (routing /
/// delivery / per-cell), never for per-edge loops. A Scope constructed with
/// a null profiler is a complete no-op, which is how instrumentation-off
/// call sites cost one null check. Recording is purely observational; no
/// simulation state is read or written.
///
/// Completed spans feed two outputs: `aggregate()` (per-path count + total
/// duration, for the metrics report) and `spans()` (the raw list, which
/// RunMetrics::write_chrome_trace turns into Chrome trace events).
class PhaseProfiler {
 public:
  PhaseProfiler();
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;
  ~PhaseProfiler();

  /// RAII span handle. Construct with nullptr for a no-op scope.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, std::string_view name);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    PhaseProfiler* profiler_ = nullptr;
  };

  /// One completed span. Times are microseconds since the profiler's epoch
  /// (its construction), so every track shares one time base.
  struct Span {
    std::string path;     ///< '/'-joined nesting path
    std::uint32_t track;  ///< per-thread lane (see tracks())
    double start_us;
    double dur_us;
  };
  [[nodiscard]] std::vector<Span> spans() const;

  struct PhaseStat {
    std::string path;
    std::uint64_t count;
    double total_ms;
  };
  /// Completed spans aggregated by path, sorted by path.
  [[nodiscard]] std::vector<PhaseStat> aggregate() const;

  struct Track {
    std::uint32_t id;
    std::string name;
  };
  /// Tracks in id order. Default names are "thread-<id>" in first-use order
  /// (track 0 is whichever thread opened a scope first, typically main).
  [[nodiscard]] std::vector<Track> tracks() const;

  /// Names the calling thread's track ("main", "worker"); affects only how
  /// the track is labelled in trace output.
  void label_current_thread(std::string_view name);

  /// Microseconds since the profiler epoch, for callers aligning their own
  /// timestamps with recorded spans.
  [[nodiscard]] double now_us() const;

 private:
  struct ThreadState {
    std::uint32_t track = 0;
    std::string label;
    /// Open scopes: name + start. Touched only by the owning thread.
    std::vector<std::pair<std::string, double>> open;
  };

  [[nodiscard]] ThreadState& state_for_current_thread();
  void close_scope();

  const std::chrono::steady_clock::time_point epoch_;
  const std::uint64_t instance_;  // distinguishes profilers in the TLS cache
  mutable std::mutex mutex_;
  std::map<std::thread::id, std::unique_ptr<ThreadState>> states_;
  std::uint32_t next_track_ = 0;
  std::vector<Span> spans_;
};

}  // namespace faultroute::obs
