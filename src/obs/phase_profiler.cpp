#include "obs/phase_profiler.hpp"

#include <algorithm>
#include <atomic>

namespace faultroute::obs {

namespace {

std::atomic<std::uint64_t> next_instance{1};

struct TlsStateCache {
  std::uint64_t instance = 0;
  void* state = nullptr;
};
thread_local TlsStateCache tls_state_cache;

}  // namespace

PhaseProfiler::PhaseProfiler()
    : epoch_(std::chrono::steady_clock::now()),
      instance_(next_instance.fetch_add(1, std::memory_order_relaxed)) {}

PhaseProfiler::~PhaseProfiler() = default;

double PhaseProfiler::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

PhaseProfiler::ThreadState& PhaseProfiler::state_for_current_thread() {
  if (tls_state_cache.instance == instance_) {
    return *static_cast<ThreadState*>(tls_state_cache.state);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = states_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<ThreadState>();
    slot->track = next_track_++;
    slot->label = "thread-" + std::to_string(slot->track);
  }
  tls_state_cache = {instance_, slot.get()};
  return *slot;
}

void PhaseProfiler::label_current_thread(std::string_view name) {
  ThreadState& state = state_for_current_thread();
  const std::lock_guard<std::mutex> lock(mutex_);  // tracks() reads labels
  state.label = std::string(name);
}

PhaseProfiler::Scope::Scope(PhaseProfiler* profiler, std::string_view name)
    : profiler_(profiler) {
  if (profiler_ == nullptr) return;
  ThreadState& state = profiler_->state_for_current_thread();
  // analyze:allow-hot-alloc(span stack bounded by phase nesting depth; phases wrap batches, not messages)
  state.open.emplace_back(std::string(name), profiler_->now_us());
}

PhaseProfiler::Scope::~Scope() {
  if (profiler_ != nullptr) profiler_->close_scope();
}

void PhaseProfiler::close_scope() {
  const double end = now_us();
  ThreadState& state = state_for_current_thread();
  if (state.open.empty()) return;  // unbalanced close; drop rather than crash
  Span span;
  span.track = state.track;
  span.start_us = state.open.back().second;
  span.dur_us = end - span.start_us;
  for (const auto& [name, start] : state.open) {
    if (!span.path.empty()) span.path += '/';
    span.path += name;
  }
  state.open.pop_back();
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<PhaseProfiler::Span> PhaseProfiler::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<PhaseProfiler::PhaseStat> PhaseProfiler::aggregate() const {
  std::map<std::string, PhaseStat> by_path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Span& span : spans_) {
      PhaseStat& stat = by_path[span.path];
      stat.path = span.path;
      ++stat.count;
      stat.total_ms += span.dur_us / 1000.0;
    }
  }
  std::vector<PhaseStat> stats;
  stats.reserve(by_path.size());
  for (auto& [path, stat] : by_path) stats.push_back(std::move(stat));
  return stats;
}

std::vector<PhaseProfiler::Track> PhaseProfiler::tracks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Track> tracks;
  tracks.reserve(states_.size());
  for (const auto& [thread, state] : states_) {
    tracks.push_back({state->track, state->label});
  }
  std::sort(tracks.begin(), tracks.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return tracks;
}

}  // namespace faultroute::obs
