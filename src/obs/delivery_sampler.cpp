#include "obs/delivery_sampler.hpp"

#include <algorithm>

namespace faultroute::obs {

DeliverySampler::DeliverySampler(std::size_t max_samples)
    : max_samples_(std::max<std::size_t>(max_samples, 2)) {
  samples_.reserve(max_samples_);
}

void DeliverySampler::record(const Sample& sample) {
  const bool keep = steps_seen_ % stride_ == 0;
  ++steps_seen_;
  if (!keep) return;
  if (samples_.size() == max_samples_) {
    // Decimate: keep the even-indexed samples (those at step % (2*stride)
    // == 0), so spacing stays uniform and sample 0 survives every halving.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[kept++] = samples_[i];
    samples_.resize(kept);  // analyze:allow-hot-alloc(decimation shrink within reserved capacity)
    stride_ *= 2;
    if ((steps_seen_ - 1) % stride_ != 0) return;  // this sample no longer lands on-grid
  }
  samples_.push_back(sample);  // analyze:allow-hot-alloc(reservoir append bounded by max_samples)
}

}  // namespace faultroute::obs
