#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace faultroute::obs {

/// How a counter's per-thread slots combine into one reported value.
enum class MergeKind : std::uint8_t {
  kSum,  ///< monotone event counts (probes, transmissions, sim steps)
  kMax,  ///< high-water gauges (peak active channels, makespan)
};

/// A registry of hierarchical named runtime counters with per-thread sharded
/// storage.
///
/// Names are dot-separated paths ("traffic.cache.hits"); the hierarchy is a
/// naming convention consumed by downstream tooling, not a tree structure in
/// memory. A counter is registered once via `id()` (mutex-protected, cold)
/// and then incremented through `add()` / `record_max()` on the hot path.
///
/// Sharding: every thread gets its own slab of cache-line-padded slots, one
/// per counter, created lazily on the thread's first increment and reused for
/// the registry's lifetime. An increment is a relaxed load + relaxed *plain
/// store* to the thread's own slot — no atomic RMW, no lock, no false
/// sharing, so hot-loop counting never contends. `value()` / `snapshot()`
/// merge the slabs (sum or max per MergeKind); totals are exact once the
/// incrementing threads have finished their work (e.g. after a
/// parallel_index_loop joins), which is the only time the engine reads them.
///
/// The registry has a fixed counter capacity chosen at construction so slabs
/// never reallocate under concurrent readers; `id()` throws std::length_error
/// beyond it. 256 slots is far above what the engine registers.
class CounterRegistry {
 public:
  using CounterId = std::uint32_t;
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit CounterRegistry(std::size_t capacity = kDefaultCapacity);
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;
  ~CounterRegistry();

  /// Find-or-register `name`. Throws std::length_error when the registry is
  /// full and std::invalid_argument when `name` was already registered with
  /// a different MergeKind.
  [[nodiscard]] CounterId id(std::string_view name, MergeKind kind = MergeKind::kSum);

  /// Number of registered counters.
  [[nodiscard]] std::size_t size() const;

  /// Hot path: adds `delta` to the calling thread's slot of counter `c`
  /// (a plain store; see class comment). `c` must be a kSum counter of this
  /// registry.
  void add(CounterId c, std::uint64_t delta);

  /// Hot path for kMax gauges: raises the calling thread's slot to `value`
  /// if it is larger.
  void record_max(CounterId c, std::uint64_t value);

  /// Merged value of one counter across all thread slabs.
  [[nodiscard]] std::uint64_t value(CounterId c) const;

  struct Entry {
    std::string name;
    MergeKind kind;
    std::uint64_t value;
  };
  /// All counters with merged values, sorted by name.
  [[nodiscard]] std::vector<Entry> snapshot() const;

 private:
  /// One thread's slots: capacity_ cache-line-padded relaxed atomics. Only
  /// the owning thread writes (plain stores); snapshots read concurrently.
  struct Cell {
    alignas(64) std::atomic<std::uint64_t> value{0};
  };
  struct Slab {
    explicit Slab(std::size_t capacity) : cells(new Cell[capacity]) {}
    std::unique_ptr<Cell[]> cells;
  };

  [[nodiscard]] Slab& slab_for_current_thread();

  const std::size_t capacity_;
  const std::uint64_t instance_;  // distinguishes registries in the TLS cache
  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<MergeKind> kinds_;
  std::map<std::string, CounterId, std::less<>> index_;
  std::map<std::thread::id, std::unique_ptr<Slab>> slabs_;
};

/// Process-global registry for counters with no natural per-run owner —
/// e.g. FlatAdjacency materializations, which happen inside lazily-cached
/// topology state. RunMetrics folds these into its metrics report.
[[nodiscard]] CounterRegistry& global_registry();

/// Convenience for cold global-count sites: find-or-register + add.
void global_count(std::string_view name, std::uint64_t delta = 1);

}  // namespace faultroute::obs
