#include "obs/build_info.hpp"

#include "obs/version.hpp"  // generated into ${CMAKE_BINARY_DIR}/generated

namespace faultroute::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{FAULTROUTE_GIT_HASH, FAULTROUTE_COMPILER,
                              FAULTROUTE_BUILD_TYPE};
  return info;
}

std::string provenance_json(std::string_view generator) {
  // Provenance fields are hashes / identifiers with no characters needing
  // JSON escaping (CMake would have to misbehave badly to inject a quote).
  const BuildInfo& info = build_info();
  std::string out = "{\"git_hash\":\"";
  out += info.git_hash;
  out += "\",\"compiler\":\"";
  out += info.compiler;
  out += "\",\"build_type\":\"";
  out += info.build_type;
  out += "\",\"generated_by\":\"";
  out += generator;
  out += "\"}";
  return out;
}

}  // namespace faultroute::obs
