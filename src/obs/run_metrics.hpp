#pragma once

#include <memory>
#include <ostream>
#include <string_view>

#include "obs/counter_registry.hpp"
#include "obs/delivery_sampler.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/schemas.hpp"

namespace faultroute::obs {

/// Schema identifier of the --metrics JSON report. Defined in
/// obs/schemas.hpp with the rest of the schema registry (same contract as
/// the scenario and bench schemas; validated by scripts/check_bench_schema.py).
inline constexpr int kMetricsSchemaVersion = schemas::kMetricsVersion;
inline constexpr const char* kMetricsSchemaName = schemas::kMetrics;

/// One run's observability state: a CounterRegistry, a PhaseProfiler, and an
/// optional DeliverySampler, bundled so the engine threads a single nullable
/// pointer (TrafficConfig::metrics, scenario::RunOptions::metrics).
///
/// Lifecycle: the CLI constructs one RunMetrics when --metrics or --trace is
/// given, hands it to the command, and serializes it afterwards —
/// write_metrics_json for the faultroute.metrics.v1 report,
/// write_chrome_trace for a chrome://tracing / Perfetto trace. When neither
/// flag is given no RunMetrics exists and every instrumentation site costs
/// exactly one null check; with it attached, no simulation result changes by
/// a bit (pinned by tests/test_observability.cpp).
///
/// This is also the substrate a future `faultroute serve` daemon snapshots
/// for its /counters endpoint: counters() is concurrency-safe by design.
class RunMetrics {
 public:
  RunMetrics() = default;
  RunMetrics(const RunMetrics&) = delete;
  RunMetrics& operator=(const RunMetrics&) = delete;

  [[nodiscard]] CounterRegistry& counters() { return counters_; }
  [[nodiscard]] const CounterRegistry& counters() const { return counters_; }
  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }
  [[nodiscard]] const PhaseProfiler& profiler() const { return profiler_; }

  /// The delivery time-series sampler, or nullptr until enabled. The engine
  /// samples only when this is non-null, so scenario sweeps (many cells, one
  /// registry) leave it off while `faultroute traffic` turns it on.
  [[nodiscard]] DeliverySampler* delivery_sampler() { return sampler_.get(); }
  [[nodiscard]] const DeliverySampler* delivery_sampler() const { return sampler_.get(); }
  DeliverySampler& enable_delivery_sampler(std::size_t max_samples = 4096) {
    sampler_ = std::make_unique<DeliverySampler>(max_samples);
    return *sampler_;
  }

  /// Writes the faultroute.metrics.v1 report: schema header, build
  /// provenance, this run's counters merged with the process-global registry
  /// (graph.* counters), aggregated phase timings, profiler tracks, and the
  /// delivery time-series when sampling was enabled.
  void write_metrics_json(std::ostream& out, std::string_view command) const;

  /// Writes a Chrome trace-event JSON object ({"traceEvents":[...]}) —
  /// loadable in chrome://tracing and Perfetto — with one complete ("X")
  /// event per recorded span and one thread_name metadata event per track,
  /// so every parallel_index_loop worker renders as its own lane.
  void write_chrome_trace(std::ostream& out) const;

 private:
  CounterRegistry counters_;
  PhaseProfiler profiler_;
  std::unique_ptr<DeliverySampler> sampler_;
};

}  // namespace faultroute::obs
