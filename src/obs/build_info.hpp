#pragma once

#include <string>
#include <string_view>

namespace faultroute::obs {

/// Build provenance, stamped by CMake into the generated obs/version.hpp
/// (see src/obs/version.hpp.in) so every bench record, scenario report, and
/// metrics file is attributable to the exact build that produced it.
struct BuildInfo {
  std::string git_hash;    ///< short commit hash, "-dirty" suffixed; "unknown" outside git
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
};

[[nodiscard]] const BuildInfo& build_info();

/// The provenance object every schema-versioned report embeds, rendered as
/// one JSON object: {"git_hash":...,"compiler":...,"build_type":...,
/// "generated_by":<generator>}.
[[nodiscard]] std::string provenance_json(std::string_view generator);

}  // namespace faultroute::obs
