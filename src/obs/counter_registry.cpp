#include "obs/counter_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace faultroute::obs {

namespace {

/// Monotone instance ids let the thread-local slab cache detect that a
/// cached pointer belongs to a dead (or different) registry without ever
/// dereferencing it — addresses can be reused, instance numbers cannot.
std::atomic<std::uint64_t> next_instance{1};

struct TlsSlabCache {
  std::uint64_t instance = 0;
  void* slab = nullptr;
};
thread_local TlsSlabCache tls_slab_cache;

}  // namespace

CounterRegistry::CounterRegistry(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      instance_(next_instance.fetch_add(1, std::memory_order_relaxed)) {}

CounterRegistry::~CounterRegistry() = default;

// analyze:allow-hot-alloc(registration appends once per distinct counter name; steady-state add/record never calls id) analyze:allow-throw-safety(kind mismatch and capacity exhaustion are programming errors; surfaced via first_error)
CounterRegistry::CounterId CounterRegistry::id(std::string_view name, MergeKind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    if (kinds_[it->second] != kind) {
      throw std::invalid_argument("CounterRegistry: counter '" + std::string(name) +
                                  "' already registered with a different merge kind");
    }
    return it->second;
  }
  if (names_.size() >= capacity_) {
    throw std::length_error("CounterRegistry: capacity " + std::to_string(capacity_) +
                            " exhausted registering '" + std::string(name) + "'");
  }
  const auto counter = static_cast<CounterId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  index_.emplace(names_.back(), counter);
  return counter;
}

std::size_t CounterRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

CounterRegistry::Slab& CounterRegistry::slab_for_current_thread() {
  if (tls_slab_cache.instance == instance_) {
    return *static_cast<Slab*>(tls_slab_cache.slab);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = slabs_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<Slab>(capacity_);
  tls_slab_cache = {instance_, slot.get()};
  return *slot;
}

void CounterRegistry::add(CounterId c, std::uint64_t delta) {
  Cell& cell = slab_for_current_thread().cells[c];
  // Plain-store idiom: the slot is thread-owned, so load+store (no RMW) is
  // exact; relaxed atomics only make the concurrent snapshot reads defined.
  cell.value.store(cell.value.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
}

void CounterRegistry::record_max(CounterId c, std::uint64_t value) {
  Cell& cell = slab_for_current_thread().cells[c];
  if (value > cell.value.load(std::memory_order_relaxed)) {
    cell.value.store(value, std::memory_order_relaxed);
  }
}

std::uint64_t CounterRegistry::value(CounterId c) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (c >= names_.size()) throw std::out_of_range("CounterRegistry: bad counter id");
  std::uint64_t merged = 0;
  for (const auto& [thread, slab] : slabs_) {
    const std::uint64_t v = slab->cells[c].value.load(std::memory_order_relaxed);
    merged = kinds_[c] == MergeKind::kSum ? merged + v : std::max(merged, v);
  }
  return merged;
}

std::vector<CounterRegistry::Entry> CounterRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> entries;
  entries.reserve(names_.size());
  for (const auto& [name, counter] : index_) {  // std::map: already name-sorted
    std::uint64_t merged = 0;
    for (const auto& [thread, slab] : slabs_) {
      const std::uint64_t v = slab->cells[counter].value.load(std::memory_order_relaxed);
      merged = kinds_[counter] == MergeKind::kSum ? merged + v : std::max(merged, v);
    }
    entries.push_back({name, kinds_[counter], merged});
  }
  return entries;
}

CounterRegistry& global_registry() {
  static CounterRegistry registry;
  return registry;
}

void global_count(std::string_view name, std::uint64_t delta) {
  CounterRegistry& registry = global_registry();
  registry.add(registry.id(name), delta);
}

}  // namespace faultroute::obs
