#pragma once

namespace faultroute::obs::schemas {

/// The single definition point for every `faultroute.*.vN` schema
/// identifier the project emits. Downstream tooling (check_bench_schema.py,
/// report diffing across PRs) dispatches on these strings, so they are part
/// of the public contract: bump a version whenever a field of the
/// corresponding report is added, removed, renamed, or its meaning/units
/// change.
///
/// tools/lint/faultroute_lint.py enforces that no other C++ file spells a
/// schema string out as a literal — emitters and validators must reference
/// these constants, so a schema bump is one edit and grep finds every user.

/// Scenario sweep reports (JSONL/CSV), emitted by scenario::Reporter.
inline constexpr const char* kScenario = "faultroute.scenario.v3";
inline constexpr int kScenarioVersion = 3;

/// --metrics runtime-observability reports, emitted by obs::RunMetrics.
inline constexpr const char* kMetrics = "faultroute.metrics.v1";
inline constexpr int kMetricsVersion = 1;

/// Bench A/B records (committed as BENCH_*.json at the repo root).
inline constexpr const char* kBenchDelivery = "faultroute.bench.delivery.v1";
inline constexpr const char* kBenchRouting = "faultroute.bench.routing.v1";
inline constexpr const char* kBenchAdjacency = "faultroute.bench.adjacency.v1";
inline constexpr const char* kBenchFrontier = "faultroute.bench.frontier.v1";
inline constexpr const char* kBenchSnapshot = "faultroute.bench.snapshot.v1";
inline constexpr int kBenchVersion = 1;

/// Scenario checkpoint journals (scenario/checkpoint.hpp): the header line
/// of every --checkpoint file names this schema, then one line per
/// completed cell. Versioned like the reports because resume parses it.
inline constexpr const char* kCheckpoint = "faultroute.checkpoint.v1";
inline constexpr int kCheckpointVersion = 1;

}  // namespace faultroute::obs::schemas
