#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/topology.hpp"
#include "percolation/indexed_memo.hpp"

namespace faultroute {

/// Decides which edges of a topology survive percolation.
///
/// The sampler is the random environment G_p: each canonical edge key is open
/// independently with probability p. Implementations must be *consistent* —
/// repeated queries of the same key return the same answer — so that a
/// routing algorithm probing an edge twice sees a fixed world, exactly as in
/// the paper's model.
class EdgeSampler {
 public:
  virtual ~EdgeSampler() = default;

  /// True iff the edge with canonical key `key` is open (survived).
  [[nodiscard]] virtual bool is_open(EdgeKey key) const = 0;

  /// Identical answer to is_open(key), with the edge additionally named by
  /// its dense undirected-edge id (ChannelIndex::edge_id_of). Pure samplers
  /// ignore the id — the default forwards to is_open — but memoising layers
  /// (SharedProbeCache) override it to index a flat array instead of hashing
  /// the key. Callers that already hold the id (the dense ProbeContext
  /// backend) probe through this entry point; `edge_id` must belong to the
  /// same topology that produced `key`.
  [[nodiscard]] virtual bool is_open_indexed(std::uint32_t edge_id, EdgeKey key) const {
    (void)edge_id;
    return is_open(key);
  }

  /// The survival probability p this sampler realises (for reporting).
  [[nodiscard]] virtual double survival_probability() const = 0;
};

/// Lazy hash-based Bernoulli percolation: edge `key` is open iff
/// hash(seed, key) < p * 2^64.
///
/// O(1) time, zero memory, deterministic per (seed, p). This is the
/// substitution that lets us percolate graphs with 2^n vertices: the random
/// world exists implicitly and is only evaluated where the algorithm looks.
class HashEdgeSampler final : public EdgeSampler {
 public:
  HashEdgeSampler(double p, std::uint64_t seed);

  [[nodiscard]] bool is_open(EdgeKey key) const override;
  [[nodiscard]] double survival_probability() const override { return p_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  double p_;
  std::uint64_t seed_;
  std::uint64_t threshold_;  // p scaled to 2^64; UINT64_MAX+saturate for p>=1
  bool always_open_;
  bool always_closed_;
};

/// A sampler with explicitly pinned edges on top of a default state.
/// Test fixtures use it to build hand-crafted percolation worlds.
class ExplicitEdgeSampler final : public EdgeSampler {
 public:
  /// Edges default to `default_open`; individual keys can be pinned.
  explicit ExplicitEdgeSampler(bool default_open = false);

  void set(EdgeKey key, bool open) {
    states_[key] = open;
    memo_.invalidate();  // O(1) generation bump, not a sweep
  }

  /// Sizes a dense per-edge-id answer memo over `graph`'s ChannelIndex
  /// edge-id space, so is_open_indexed (which the dense probe-state backend
  /// and the flat analyses call with ids in hand) resolves repeat queries
  /// with one array load instead of hashing the key. Purely an accelerator:
  /// answers are identical with or without it, ids outside the indexed
  /// space fall back to the key path, and any later set() invalidates the
  /// memo wholesale (mutation is setup-time by contract).
  void index_edges(const Topology& graph);

  [[nodiscard]] bool is_open(EdgeKey key) const override;
  [[nodiscard]] bool is_open_indexed(std::uint32_t edge_id, EdgeKey key) const override;
  [[nodiscard]] double survival_probability() const override {
    return default_open_ ? 1.0 : 0.0;
  }

 private:
  bool default_open_;
  std::unordered_map<EdgeKey, bool> states_;
  /// Answer memo per dense edge id (unknown / closed / open), resolved
  /// lazily and published with relaxed stores — answers are a pure function
  /// of the key between mutations, so racing resolvers write identical
  /// words (the SharedProbeCache argument).
  detail::IndexedStateMemo memo_;
};

}  // namespace faultroute
