#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace faultroute {

/// Disjoint-set forest with union-by-size and path halving.
/// Amortised near-constant operations; used to materialise percolation
/// clusters of finite graphs.
class UnionFind {
 public:
  explicit UnionFind(std::uint64_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint64_t{0});
  }

  [[nodiscard]] std::uint64_t find(std::uint64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::uint64_t a, std::uint64_t b) {
    std::uint64_t ra = find(a);
    std::uint64_t rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  [[nodiscard]] bool same(std::uint64_t a, std::uint64_t b) { return find(a) == find(b); }

  /// Size of the set containing x.
  [[nodiscard]] std::uint64_t size_of(std::uint64_t x) { return size_[find(x)]; }

  /// Number of disjoint sets.
  [[nodiscard]] std::uint64_t num_components() const { return components_; }

  [[nodiscard]] std::uint64_t num_elements() const { return parent_.size(); }

 private:
  std::vector<std::uint64_t> parent_;
  std::vector<std::uint64_t> size_;
  std::uint64_t components_;
};

}  // namespace faultroute
