#include "percolation/edge_sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/channel_index.hpp"
#include "random/splitmix64.hpp"

namespace faultroute {

HashEdgeSampler::HashEdgeSampler(double p, std::uint64_t seed)
    : p_(p),
      seed_(seed),
      threshold_(0),
      always_open_(p >= 1.0),
      always_closed_(p <= 0.0) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    // analyze:allow-throw-safety(parameter validation at sampler construction)
    throw std::invalid_argument("HashEdgeSampler: p must be in [0, 1]");
  }
  if (!always_open_ && !always_closed_) {
    threshold_ = static_cast<std::uint64_t>(std::ldexp(p, 64));
  }
}

bool HashEdgeSampler::is_open(EdgeKey key) const {
  if (always_open_) return true;
  if (always_closed_) return false;
  return hash_pair(seed_, key) < threshold_;
}

ExplicitEdgeSampler::ExplicitEdgeSampler(bool default_open) : default_open_(default_open) {}

bool ExplicitEdgeSampler::is_open(EdgeKey key) const {
  const auto it = states_.find(key);
  return it != states_.end() ? it->second : default_open_;
}

namespace {

// Memo states of the per-edge-id answer memo (0 is IndexedStateMemo's
// reserved "unknown").
constexpr std::uint8_t kMemoClosed = 1;
constexpr std::uint8_t kMemoOpen = 2;

}  // namespace

void ExplicitEdgeSampler::index_edges(const Topology& graph) {
  memo_.attach(graph.channel_index().num_edge_ids());
}

bool ExplicitEdgeSampler::is_open_indexed(std::uint32_t edge_id, EdgeKey key) const {
  const std::uint8_t state = memo_.load(edge_id);
  if (state != detail::IndexedStateMemo::kUnknown) return state == kMemoOpen;
  const bool open = is_open(key);
  memo_.store(edge_id, open ? kMemoOpen : kMemoClosed);
  return open;
}

}  // namespace faultroute
