#include "percolation/threshold.hpp"

#include <stdexcept>

#include "percolation/cluster_analysis.hpp"
#include "percolation/edge_sampler.hpp"
#include "random/rng.hpp"

namespace faultroute {

double estimate_threshold(const OrderParameter& order, double lo, double hi,
                          const ThresholdConfig& config) {
  if (!(lo < hi)) throw std::invalid_argument("estimate_threshold: need lo < hi");
  if (config.trials_per_point < 1) {
    throw std::invalid_argument("estimate_threshold: trials_per_point must be >= 1");
  }
  std::uint64_t probe_index = 0;
  const auto averaged = [&](double p) {
    double total = 0.0;
    for (int t = 0; t < config.trials_per_point; ++t) {
      total += order(p, derive_seed(config.seed,
                                    probe_index * 1000003ULL + static_cast<std::uint64_t>(t)));
    }
    ++probe_index;
    return total / config.trials_per_point;
  };

  while (hi - lo > config.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (averaged(mid) >= config.target_fraction) {
      hi = mid;  // supercritical at mid: threshold is below
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

OrderParameter largest_cluster_order(const Topology& graph, AdjacencyMode mode) {
  return [&graph, mode](double p, std::uint64_t seed) {
    return analyze_components(graph, HashEdgeSampler(p, seed), mode).largest_fraction();
  };
}

}  // namespace faultroute
