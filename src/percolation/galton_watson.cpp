#include "percolation/galton_watson.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace faultroute {

BinaryGaltonWatson::BinaryGaltonWatson(double p) : p_(p) {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BinaryGaltonWatson: p must be in [0, 1]");
  }
}

double BinaryGaltonWatson::survival_probability() const {
  // Extinction probability e solves e = (1 - p + p e)^2, i.e.
  // p^2 e^2 + (2p(1-p) - 1) e + (1-p)^2 = 0. The relevant root is the
  // smaller one; for p <= 1/2 it is e = 1.
  if (p_ <= 0.5) return 0.0;
  const double a = p_ * p_;
  const double b = 2.0 * p_ * (1.0 - p_) - 1.0;
  const double c = (1.0 - p_) * (1.0 - p_);
  const double disc = b * b - 4.0 * a * c;
  const double e = (-b - std::sqrt(disc)) / (2.0 * a);
  return 1.0 - e;
}

double BinaryGaltonWatson::reach_probability(int depth) const {
  // q_k = Pr[some open branch of length k from the root]; q_0 = 1,
  // q_{k+1} = 1 - (1 - p q_k)^2.
  double q = 1.0;
  for (int k = 0; k < depth; ++k) {
    const double miss = 1.0 - p_ * q;
    q = 1.0 - miss * miss;
  }
  return q;
}

bool BinaryGaltonWatson::simulate_reaches(Rng& rng, int depth) const {
  // Depth-first: count of live lineages is kept implicitly via recursion on
  // an explicit stack of remaining depths.
  std::vector<int> stack;
  stack.push_back(depth);
  while (!stack.empty()) {
    const int remaining = stack.back();
    stack.pop_back();
    if (remaining == 0) return true;
    for (int child = 0; child < 2; ++child) {
      if (bernoulli(rng, p_)) stack.push_back(remaining - 1);
    }
  }
  return false;
}

std::uint64_t BinaryGaltonWatson::simulate_total_progeny(Rng& rng,
                                                         std::uint64_t max_nodes) const {
  std::uint64_t nodes = 0;
  std::uint64_t pending = 1;  // live individuals awaiting expansion
  while (pending > 0) {
    ++nodes;
    if (nodes >= max_nodes) return max_nodes;
    --pending;
    for (int child = 0; child < 2; ++child) {
      if (bernoulli(rng, p_)) ++pending;
    }
  }
  return nodes;
}

}  // namespace faultroute
