#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// Chemical (percolation) distance D(u, v): the length of the shortest open
/// path between u and v in G_p. Returns nullopt when they are not connected
/// *or* when the search visited `max_vertices` vertices without resolving
/// (0 = unbounded; use open_connected for a three-valued answer).
///
/// Lemma 8 of the paper (Antal-Pisztora) asserts that above criticality
/// D(x, y) <= rho * d(x, y) up to exponentially unlikely exceptions; the
/// chemical-distance experiments (E9, E10) measure exactly this ratio.
///
/// `mode` selects the adjacency backend (graph/flat_adjacency.hpp): the BFS
/// runs over CSR rows with vertex-indexed epoch-stamped parent arrays when
/// flat, over hash containers and the virtual interface when implicit (the
/// only option for huge implicit graphs). Identical distances and paths.
[[nodiscard]] std::optional<std::uint64_t> chemical_distance(
    const Topology& graph, const EdgeSampler& sampler, VertexId u, VertexId v,
    std::uint64_t max_vertices = 0, AdjacencyMode mode = AdjacencyMode::kAuto);

/// As above, but also returns a shortest open path (empty if disconnected).
struct ChemicalPathResult {
  std::optional<std::uint64_t> distance;
  std::vector<VertexId> path;  // u .. v when distance.has_value()
};

[[nodiscard]] ChemicalPathResult chemical_path(const Topology& graph,
                                               const EdgeSampler& sampler, VertexId u,
                                               VertexId v, std::uint64_t max_vertices = 0,
                                               AdjacencyMode mode = AdjacencyMode::kAuto);

}  // namespace faultroute
