#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/indexed_memo.hpp"

namespace faultroute {

/// A sampler that forces chosen edges open or closed on top of a base
/// environment. This is the bridge to the *worst-case* fault model of the
/// literature the paper contrasts itself with (Leighton–Maggs–Sitaraman,
/// Cole–Maggs–Sitaraman): an adversary deletes specific edges, possibly in
/// addition to random failures.
///
/// The base sampler must outlive this one.
class OverrideSampler final : public EdgeSampler {
 public:
  explicit OverrideSampler(const EdgeSampler& base) : base_(base) {}

  /// Forces one edge to the given state (overrides any earlier setting).
  void force(EdgeKey key, bool open) {
    overrides_[key] = open;
    memo_.invalidate();  // O(1) generation bump, not a sweep
  }

  /// Forces a batch of edges closed — the adversary's deletion set.
  void close_all(const std::vector<EdgeKey>& keys) {
    for (const EdgeKey key : keys) overrides_[key] = false;
    memo_.invalidate();
  }

  /// Sizes a dense per-edge-id *override* memo over `graph`'s ChannelIndex
  /// edge-id space, so is_open_indexed stops hashing the override map on
  /// the dense/flat hot paths (which already hold the id). Only this
  /// sampler's own override state is memoized — un-forced edges always
  /// delegate to the base's live is_open_indexed — so the memo can never
  /// serve stale base answers, and force()/close_all() invalidate the rest
  /// in O(1). Identical answers to is_open; ids outside the indexed space
  /// fall back to the key path.
  void index_edges(const Topology& graph);

  [[nodiscard]] std::size_t num_overrides() const { return overrides_.size(); }

  [[nodiscard]] bool is_open(EdgeKey key) const override {
    const auto it = overrides_.find(key);
    return it != overrides_.end() ? it->second : base_.is_open(key);
  }

  [[nodiscard]] bool is_open_indexed(std::uint32_t edge_id, EdgeKey key) const override;

  [[nodiscard]] double survival_probability() const override {
    return base_.survival_probability();  // marginal of the un-forced edges
  }

 private:
  const EdgeSampler& base_;
  std::unordered_map<EdgeKey, bool> overrides_;
  /// Per-edge-id override memo (no-override / forced-closed / forced-open),
  /// lazily resolved from `overrides_` with relaxed publication — override
  /// state is pure between mutations, so races write identical words.
  detail::IndexedStateMemo memo_;
};

/// All edges with at least one endpoint within graph distance `radius` of
/// `center` — a regional outage. Uses the fault-free metric.
[[nodiscard]] std::vector<EdgeKey> edges_within_ball(const Topology& graph,
                                                     VertexId center, int radius);

/// The edges incident to `v` — the minimal cut isolating one vertex.
[[nodiscard]] std::vector<EdgeKey> incident_cut(const Topology& graph, VertexId v);

}  // namespace faultroute
