#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/explicit_graph.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"
#include "percolation/union_find.hpp"

namespace faultroute {

/// Summary of the open-cluster structure of a percolated finite graph.
struct ComponentSummary {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_open_edges = 0;
  std::uint64_t num_components = 0;
  std::uint64_t largest = 0;        // size of the largest open cluster
  std::uint64_t second_largest = 0; // size of the runner-up (0 if none)

  /// Fraction of vertices in the largest cluster — the giant-component
  /// indicator of [AKS82] and of percolation theory.
  [[nodiscard]] double largest_fraction() const {
    return num_vertices == 0 ? 0.0
                             : static_cast<double>(largest) / static_cast<double>(num_vertices);
  }
};

/// Full cluster decomposition: summary plus a union-find for same-cluster
/// queries. Materialises every edge once — O(V + E) time, O(V) memory — so
/// only use on graphs small enough to enumerate (<= ~10^8 edges).
///
/// `mode` selects the adjacency backend the edge sweep runs over (see
/// graph/flat_adjacency.hpp): CSR rows with indexed sampler queries when
/// flat, the virtual interface when implicit. Results are identical; the
/// flat sweep is faster (bench/bench_adjacency.cpp).
class ClusterDecomposition {
 public:
  ClusterDecomposition(const Topology& graph, const EdgeSampler& sampler,
                       AdjacencyMode mode = AdjacencyMode::kAuto);

  [[nodiscard]] const ComponentSummary& summary() const { return summary_; }

  [[nodiscard]] bool same_cluster(VertexId u, VertexId v) { return dsu_.same(u, v); }
  [[nodiscard]] std::uint64_t cluster_size(VertexId v) { return dsu_.size_of(v); }

  /// True iff v lies in the (unique) largest cluster.
  [[nodiscard]] bool in_largest_cluster(VertexId v);

 private:
  ComponentSummary summary_;
  UnionFind dsu_;
  std::uint64_t largest_root_;
};

/// Convenience: just the summary (no same-cluster queries needed).
[[nodiscard]] ComponentSummary analyze_components(const Topology& graph,
                                                  const EdgeSampler& sampler,
                                                  AdjacencyMode mode = AdjacencyMode::kAuto);

/// BFS over open edges from `source`, stopping once `max_vertices` vertices
/// have been reached (0 = unbounded). Returns the visited vertices in BFS
/// order. Backend per `mode`: vertex-indexed epoch-stamped visited arrays
/// over CSR rows when flat (zero steady-state allocation for the marks;
/// repeated sweeps reuse per-thread scratch); hash containers over the
/// implicit interface otherwise — the latter is what makes huge implicit
/// graphs affordable, which is exactly what kAuto's budget preserves.
[[nodiscard]] std::vector<VertexId> open_cluster_of(const Topology& graph,
                                                    const EdgeSampler& sampler,
                                                    VertexId source,
                                                    std::uint64_t max_vertices = 0,
                                                    AdjacencyMode mode = AdjacencyMode::kAuto);

/// Ground-truth connectivity test used to condition experiments on {u ~ v}:
/// BFS from u over open edges until v is found or the cluster is exhausted
/// (or `max_vertices` visited, in which case std::nullopt = "unknown").
[[nodiscard]] std::optional<bool> open_connected(const Topology& graph,
                                                 const EdgeSampler& sampler, VertexId u,
                                                 VertexId v,
                                                 std::uint64_t max_vertices = 0,
                                                 AdjacencyMode mode = AdjacencyMode::kAuto);

/// Materialises the percolated subgraph (all vertices, only open edges) as an
/// ExplicitGraph. Small graphs only.
[[nodiscard]] ExplicitGraph materialize_open_subgraph(const Topology& graph,
                                                      const EdgeSampler& sampler,
                                                      AdjacencyMode mode = AdjacencyMode::kAuto);

}  // namespace faultroute
