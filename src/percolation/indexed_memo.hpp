#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

namespace faultroute::detail {

/// Dense per-edge-id memo of small state values with O(1) wholesale
/// invalidation, shared by the indexed-memo samplers (ExplicitEdgeSampler,
/// OverrideSampler).
///
/// Each cell is one atomic word packing (generation, state): a cell is live
/// only while its generation matches the memo's current one, so
/// invalidate() is a single counter bump, never an O(cells) sweep — the
/// epoch idiom of ProbeArena/DenseMarks, in atomic form. On the (once per
/// 2^30 invalidations) generation wrap, cells are zero-filled so stale
/// generations can never read as live.
///
/// Concurrency contract, matching the samplers that embed it: concurrent
/// const queries (load/store of resolved answers) are safe — answers are a
/// pure function of the key between mutations, so racing stores write
/// identical words with relaxed ordering. invalidate() and attach() are
/// mutations and must be externally serialized against queries, exactly
/// like the samplers' own force()/set() mutators.
class IndexedStateMemo {
 public:
  /// State 0 is reserved as "unknown" (the reset value); stored states must
  /// fit kStateBits.
  static constexpr std::uint8_t kUnknown = 0;
  static constexpr unsigned kStateBits = 2;
  static constexpr std::uint32_t kStateMask = (1u << kStateBits) - 1;
  static constexpr std::uint32_t kMaxGeneration = (1u << (32 - kStateBits)) - 1;

  /// Allocates `size` cells, all unknown. Replaces any previous attachment.
  void attach(std::uint32_t size) {
    cells_ = std::make_unique<std::atomic<std::uint32_t>[]>(size);
    size_ = size;
    generation_ = 0;
    invalidate();
  }

  /// True once attach() has been called; unattached memos answer nothing.
  [[nodiscard]] bool attached() const { return size_ > 0; }
  [[nodiscard]] std::uint32_t size() const { return size_; }

  /// Current state of `id`: kUnknown when out of range, never resolved, or
  /// invalidated since.
  [[nodiscard]] std::uint8_t load(std::uint32_t id) const {
    if (id >= size_) return kUnknown;
    const std::uint32_t cell = cells_[id].load(std::memory_order_relaxed);
    if ((cell >> kStateBits) != generation_) return kUnknown;
    return static_cast<std::uint8_t>(cell & kStateMask);
  }

  /// Publishes a resolved state (1..kStateMask) for `id`; out-of-range ids
  /// are ignored (the caller already fell back to its keyed path).
  void store(std::uint32_t id, std::uint8_t state) const {
    if (id >= size_) return;
    cells_[id].store((generation_ << kStateBits) | state, std::memory_order_relaxed);
  }

  /// Drops every memoized state in O(1) (generation bump).
  void invalidate() {
    if (generation_ == kMaxGeneration) {
      for (std::uint32_t i = 0; i < size_; ++i) {
        cells_[i].store(0, std::memory_order_relaxed);
      }
      generation_ = 0;
    }
    ++generation_;
  }

 private:
  std::unique_ptr<std::atomic<std::uint32_t>[]> cells_;
  std::uint32_t size_ = 0;
  /// Cells are live iff their packed generation equals this. Starts at 1
  /// (via the attach-time invalidate), so zero-initialized cells are stale.
  std::uint32_t generation_ = 0;
};

}  // namespace faultroute::detail
