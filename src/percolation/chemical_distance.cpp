#include "percolation/chemical_distance.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace faultroute {

ChemicalPathResult chemical_path(const Topology& graph, const EdgeSampler& sampler,
                                 VertexId u, VertexId v, std::uint64_t max_vertices) {
  ChemicalPathResult result;
  if (u == v) {
    result.distance = 0;
    result.path = {u};
    return result;
  }
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<std::pair<VertexId, std::uint64_t>> queue;
  parent.emplace(u, u);
  queue.emplace(u, 0);
  while (!queue.empty()) {
    const auto [x, dx] = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      parent.emplace(y, x);
      if (y == v) {
        result.distance = dx + 1;
        for (VertexId z = v;; z = parent.at(z)) {
          result.path.push_back(z);
          if (z == u) break;
        }
        std::reverse(result.path.begin(), result.path.end());
        return result;
      }
      if (max_vertices != 0 && parent.size() >= max_vertices) return result;  // unknown
      queue.emplace(y, dx + 1);
    }
  }
  result.distance = std::nullopt;  // exhausted the cluster: disconnected
  return result;
}

std::optional<std::uint64_t> chemical_distance(const Topology& graph,
                                               const EdgeSampler& sampler, VertexId u,
                                               VertexId v, std::uint64_t max_vertices) {
  return chemical_path(graph, sampler, u, v, max_vertices).distance;
}

}  // namespace faultroute
