#include "percolation/chemical_distance.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

#include "graph/bfs_scratch.hpp"

namespace faultroute {

namespace {

ChemicalPathResult chemical_path_flat(const FlatAdjacency& flat, const EdgeSampler& sampler,
                                      VertexId u, VertexId v, std::uint64_t max_vertices) {
  ChemicalPathResult result;
  detail::BfsScratch& scratch = detail::bfs_scratch();
  scratch.begin(flat.num_vertices());
  scratch.mark(u, u);
  scratch.dist_queue.emplace_back(u, 0);
  std::uint64_t discovered = 1;  // the hash backend's parent.size()
  std::size_t head = 0;
  while (head < scratch.dist_queue.size()) {
    const auto [x, dx] = scratch.dist_queue[head++];
    const std::uint64_t end = flat.row_end(x);
    for (std::uint64_t pos = flat.row_begin(x); pos < end; ++pos) {
      const VertexId y = flat.neighbor_at(pos);
      if (scratch.seen(y)) continue;
      if (!sampler.is_open_indexed(flat.edge_id_at(pos), flat.edge_key_at(pos))) continue;
      scratch.mark(y, x);
      ++discovered;
      if (y == v) {
        result.distance = dx + 1;
        for (VertexId z = v;; z = scratch.parent[z]) {
          result.path.push_back(z);
          if (z == u) break;
        }
        std::reverse(result.path.begin(), result.path.end());
        return result;
      }
      if (max_vertices != 0 && discovered >= max_vertices) return result;  // unknown
      scratch.dist_queue.emplace_back(y, dx + 1);
    }
  }
  result.distance = std::nullopt;  // exhausted the cluster: disconnected
  return result;
}

}  // namespace

ChemicalPathResult chemical_path(const Topology& graph, const EdgeSampler& sampler,
                                 VertexId u, VertexId v, std::uint64_t max_vertices,
                                 AdjacencyMode mode) {
  ChemicalPathResult result;
  if (u == v) {
    result.distance = 0;
    result.path = {u};
    return result;
  }
  if (const FlatAdjacency* flat = resolve_adjacency(graph, mode)) {
    return chemical_path_flat(*flat, sampler, u, v, max_vertices);
  }
  std::unordered_map<VertexId, VertexId> parent;
  std::queue<std::pair<VertexId, std::uint64_t>> queue;
  parent.emplace(u, u);
  queue.emplace(u, 0);
  while (!queue.empty()) {
    const auto [x, dx] = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (parent.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      parent.emplace(y, x);
      if (y == v) {
        result.distance = dx + 1;
        for (VertexId z = v;; z = parent.at(z)) {
          result.path.push_back(z);
          if (z == u) break;
        }
        std::reverse(result.path.begin(), result.path.end());
        return result;
      }
      if (max_vertices != 0 && parent.size() >= max_vertices) return result;  // unknown
      queue.emplace(y, dx + 1);
    }
  }
  result.distance = std::nullopt;  // exhausted the cluster: disconnected
  return result;
}

std::optional<std::uint64_t> chemical_distance(const Topology& graph,
                                               const EdgeSampler& sampler, VertexId u,
                                               VertexId v, std::uint64_t max_vertices,
                                               AdjacencyMode mode) {
  return chemical_path(graph, sampler, u, v, max_vertices, mode).distance;
}

}  // namespace faultroute
