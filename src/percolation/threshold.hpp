#pragma once

#include <cstdint>
#include <functional>

#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"

namespace faultroute {

/// Configuration for the critical-probability estimator.
struct ThresholdConfig {
  /// The order parameter crosses `target_fraction` at the estimated point
  /// (e.g. 0.2 of all vertices in the largest cluster).
  double target_fraction = 0.2;
  /// Monte-Carlo repetitions per probed p.
  int trials_per_point = 8;
  /// Bisection stops when the bracket is narrower than this.
  double tolerance = 1e-3;
  /// Base seed; trial i at probe j uses a seed derived from (seed, j, i).
  std::uint64_t seed = 0x5eedULL;
};

/// Order parameter: given (p, seed), returns the largest-cluster fraction
/// (or any monotone-in-p indicator in [0, 1]).
using OrderParameter = std::function<double(double p, std::uint64_t seed)>;

/// Estimates the percolation threshold of a monotone order parameter by
/// bisection on p in [lo, hi]: the returned p* is where the averaged order
/// parameter crosses `target_fraction`.
///
/// Used for E7: recovering p_c(2) ~ 0.5 and p_c(3) ~ 0.2488 on finite
/// meshes, and the giant-component threshold p ~ 1/n of the hypercube.
[[nodiscard]] double estimate_threshold(const OrderParameter& order, double lo, double hi,
                                        const ThresholdConfig& config = {});

/// The standard order parameter for graph percolation: (p, seed) -> the
/// largest-cluster fraction of `graph` percolated by HashEdgeSampler(p,
/// seed). Every trial of a bisection re-sweeps all edges of the graph, so
/// `mode` matters: the default kAuto runs the component sweep over the
/// cached CSR snapshot (graph/flat_adjacency.hpp) whenever the graph fits,
/// falling back to the implicit interface beyond the budget. The returned
/// callable borrows `graph`, which must outlive it.
[[nodiscard]] OrderParameter largest_cluster_order(const Topology& graph,
                                                   AdjacencyMode mode = AdjacencyMode::kAuto);

}  // namespace faultroute
