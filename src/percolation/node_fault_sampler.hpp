#pragma once

#include <cstdint>

#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// Node-failure percolation, expressed in the edge-probe model.
///
/// The paper studies edge failures, but much of the emulation literature it
/// cites (Hastad-Leighton-Newman on the hypercube, Cole-Maggs-Sitaraman on
/// the butterfly) considers *node* failures. We model them compositionally:
/// a vertex survives with probability `node_p` (hash-sampled), an edge with
/// probability `edge_p`, and a *probe* of edge {a, b} answers "open" iff the
/// edge and both endpoints survive. Probing stays O(1) and consistent
/// (endpoints are re-derived from the canonical key via
/// Topology::endpoints), so all routers and experiments work unchanged.
///
/// The induced edge states are positively correlated through shared
/// endpoints — exactly the correlation structure of node percolation.
class NodeFaultSampler final : public EdgeSampler {
 public:
  /// The topology must outlive the sampler. node_p / edge_p in [0, 1].
  NodeFaultSampler(const Topology& graph, double node_p, double edge_p,
                   std::uint64_t seed);

  [[nodiscard]] bool is_open(EdgeKey key) const override;

  /// Marginal open-probability of a single edge: node_p^2 * edge_p.
  [[nodiscard]] double survival_probability() const override;

  [[nodiscard]] bool vertex_alive(VertexId v) const;

 private:
  const Topology& graph_;
  double node_p_;
  HashEdgeSampler edge_faults_;
  std::uint64_t node_seed_;
  std::uint64_t node_threshold_;
  bool nodes_always_alive_;
  bool nodes_always_dead_;
};

}  // namespace faultroute
