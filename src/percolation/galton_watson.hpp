#pragma once

#include <cstdint>

#include "random/rng.hpp"

namespace faultroute {

/// The binary Galton-Watson (branching) process with edge-retention
/// probability p: each node independently keeps each of its 2 children with
/// probability p.
///
/// This is the process behind the double binary tree results: an open branch
/// in *both* trees of TT_n corresponds to a single tree with edge probability
/// p^2, hence the root-connectivity threshold p = 1/sqrt(2) (Lemma 6), and
/// the oracle router of Theorem 9 is a depth-first search of a supercritical
/// GW tree whose dead branches have finite expected size.
class BinaryGaltonWatson {
 public:
  /// Requires p in [0, 1].
  explicit BinaryGaltonWatson(double p);

  [[nodiscard]] double p() const { return p_; }

  /// Exact survival probability of the infinite process:
  /// 1 - e where e is the smallest fixed point of e = (1 - p + p*e)^2.
  /// Zero for p <= 1/2.
  [[nodiscard]] double survival_probability() const;

  /// Probability that the tree restricted to `depth` levels reaches depth
  /// `depth`, computed by exact backward recursion q_{k+1} = 1-(1-p q_k)^2.
  [[nodiscard]] double reach_probability(int depth) const;

  /// Simulates whether the process reaches the given depth.
  [[nodiscard]] bool simulate_reaches(Rng& rng, int depth) const;

  /// Simulates the total progeny truncated at `max_nodes` nodes
  /// (returns max_nodes if the cap is hit, which for supercritical p
  /// corresponds to survival with positive probability).
  [[nodiscard]] std::uint64_t simulate_total_progeny(Rng& rng,
                                                     std::uint64_t max_nodes) const;

 private:
  double p_;
};

}  // namespace faultroute
