#include "percolation/override_sampler.hpp"

#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace faultroute {

std::vector<EdgeKey> edges_within_ball(const Topology& graph, VertexId center,
                                       int radius) {
  std::vector<EdgeKey> keys;
  std::unordered_set<EdgeKey> seen;
  std::unordered_map<VertexId, int> dist;
  std::queue<VertexId> queue;
  dist.emplace(center, 0);
  queue.push(center);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int dx = dist.at(x);
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const EdgeKey key = graph.edge_key(x, i);
      if (seen.insert(key).second) keys.push_back(key);
      const VertexId y = graph.neighbor(x, i);
      if (dx + 1 <= radius && !dist.contains(y)) {
        dist.emplace(y, dx + 1);
        queue.push(y);
      }
    }
  }
  return keys;
}

std::vector<EdgeKey> incident_cut(const Topology& graph, VertexId v) {
  return incident_edge_keys(graph, v);
}

}  // namespace faultroute
