#include "percolation/override_sampler.hpp"

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "graph/channel_index.hpp"

namespace faultroute {

namespace {

// Memo states: what the override map says about an edge, NOT the final
// answer — un-forced edges must keep consulting the base sampler live, or
// a mutable base (e.g. an ExplicitEdgeSampler fixture) could change under
// a stale memo and make is_open_indexed contradict is_open. (0 is
// IndexedStateMemo's reserved "unknown".)
constexpr std::uint8_t kNoOverride = 1;
constexpr std::uint8_t kForcedClosed = 2;
constexpr std::uint8_t kForcedOpen = 3;

}  // namespace

void OverrideSampler::index_edges(const Topology& graph) {
  memo_.attach(graph.channel_index().num_edge_ids());
}

bool OverrideSampler::is_open_indexed(std::uint32_t edge_id, EdgeKey key) const {
  switch (memo_.load(edge_id)) {
    case kForcedOpen:
      return true;
    case kForcedClosed:
      return false;
    case kNoOverride:
      return base_.is_open_indexed(edge_id, key);
    default: {  // unknown: resolve the override map once, then memoize
      const auto it = overrides_.find(key);
      if (it == overrides_.end()) {
        memo_.store(edge_id, kNoOverride);
        return base_.is_open_indexed(edge_id, key);
      }
      memo_.store(edge_id, it->second ? kForcedOpen : kForcedClosed);
      return it->second;
    }
  }
}

std::vector<EdgeKey> edges_within_ball(const Topology& graph, VertexId center,
                                       int radius) {
  std::vector<EdgeKey> keys;
  std::unordered_set<EdgeKey> seen;
  std::unordered_map<VertexId, int> dist;
  std::queue<VertexId> queue;
  dist.emplace(center, 0);
  queue.push(center);
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int dx = dist.at(x);
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const EdgeKey key = graph.edge_key(x, i);
      if (seen.insert(key).second) keys.push_back(key);
      const VertexId y = graph.neighbor(x, i);
      if (dx + 1 <= radius && !dist.contains(y)) {
        dist.emplace(y, dx + 1);
        queue.push(y);
      }
    }
  }
  return keys;
}

std::vector<EdgeKey> incident_cut(const Topology& graph, VertexId v) {
  return incident_edge_keys(graph, v);
}

}  // namespace faultroute
