#include "percolation/cluster_analysis.hpp"

#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace faultroute {

namespace {

/// Applies `fn(v, i, neighbor)` to every open incident edge, visiting each
/// undirected edge once (from the endpoint that owns the canonical key —
/// we simply visit from the lower-id endpoint; for parallel edges both
/// orientations carry distinct keys so this stays exact).
template <typename Fn>
void for_each_open_edge(const Topology& graph, const EdgeSampler& sampler, Fn&& fn) {
  const std::uint64_t n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const int deg = graph.degree(v);
    for (int i = 0; i < deg; ++i) {
      const VertexId w = graph.neighbor(v, i);
      if (w < v) continue;  // visit each edge from its lower endpoint only
      if (w == v) continue;
      if (sampler.is_open(graph.edge_key(v, i))) fn(v, w);
    }
  }
}

}  // namespace

ClusterDecomposition::ClusterDecomposition(const Topology& graph, const EdgeSampler& sampler)
    : dsu_(graph.num_vertices()), largest_root_(0) {
  summary_.num_vertices = graph.num_vertices();
  for_each_open_edge(graph, sampler, [this](VertexId a, VertexId b) {
    ++summary_.num_open_edges;
    dsu_.unite(a, b);
  });
  summary_.num_components = dsu_.num_components();
  // Scan roots for the two largest clusters.
  for (VertexId v = 0; v < summary_.num_vertices; ++v) {
    if (dsu_.find(v) != v) continue;
    const std::uint64_t size = dsu_.size_of(v);
    if (size > summary_.largest) {
      summary_.second_largest = summary_.largest;
      summary_.largest = size;
      largest_root_ = v;
    } else if (size > summary_.second_largest) {
      summary_.second_largest = size;
    }
  }
}

bool ClusterDecomposition::in_largest_cluster(VertexId v) {
  return dsu_.find(v) == largest_root_;
}

ComponentSummary analyze_components(const Topology& graph, const EdgeSampler& sampler) {
  return ClusterDecomposition(graph, sampler).summary();
}

std::vector<VertexId> open_cluster_of(const Topology& graph, const EdgeSampler& sampler,
                                      VertexId source, std::uint64_t max_vertices) {
  std::vector<VertexId> visited_order;
  std::unordered_set<VertexId> visited;
  std::queue<VertexId> queue;
  visited.insert(source);
  visited_order.push_back(source);
  queue.push(source);
  while (!queue.empty()) {
    if (max_vertices != 0 && visited_order.size() >= max_vertices) break;
    const VertexId x = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (visited.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      visited.insert(y);
      visited_order.push_back(y);
      if (max_vertices != 0 && visited_order.size() >= max_vertices) return visited_order;
      queue.push(y);
    }
  }
  return visited_order;
}

std::optional<bool> open_connected(const Topology& graph, const EdgeSampler& sampler,
                                   VertexId u, VertexId v, std::uint64_t max_vertices) {
  if (u == v) return true;
  std::unordered_set<VertexId> visited;
  std::queue<VertexId> queue;
  visited.insert(u);
  queue.push(u);
  std::uint64_t count = 1;
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (visited.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      if (y == v) return true;
      visited.insert(y);
      ++count;
      if (max_vertices != 0 && count >= max_vertices) return std::nullopt;
      queue.push(y);
    }
  }
  return false;
}

ExplicitGraph materialize_open_subgraph(const Topology& graph, const EdgeSampler& sampler) {
  ExplicitGraph::EdgeList edges;
  for_each_open_edge(graph, sampler,
                     [&edges](VertexId a, VertexId b) { edges.emplace_back(a, b); });
  return ExplicitGraph(graph.num_vertices(), edges);
}

}  // namespace faultroute
