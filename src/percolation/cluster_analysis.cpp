#include "percolation/cluster_analysis.hpp"

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "graph/bfs_scratch.hpp"

namespace faultroute {

namespace {

/// Applies `fn(v, w)` to every open edge, visiting each undirected edge once
/// (from its lower-id endpoint; parallel edges appear as separate slots of
/// that endpoint, so they stay exact). Implicit-interface sweep.
template <typename Fn>
void for_each_open_edge(const Topology& graph, const EdgeSampler& sampler, Fn&& fn) {
  const std::uint64_t n = graph.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const int deg = graph.degree(v);
    for (int i = 0; i < deg; ++i) {
      const VertexId w = graph.neighbor(v, i);
      if (w <= v) continue;  // visit each edge from its lower endpoint only
      if (sampler.is_open(graph.edge_key(v, i))) fn(v, w);
    }
  }
}

/// The same sweep over CSR rows: two array loads per slot and an indexed
/// sampler query, no virtual dispatch. Identical visit order and verdicts.
template <typename Fn>
void for_each_open_edge(const FlatAdjacency& flat, const EdgeSampler& sampler, Fn&& fn) {
  const std::uint64_t n = flat.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t end = flat.row_end(v);
    for (std::uint64_t pos = flat.row_begin(v); pos < end; ++pos) {
      const VertexId w = flat.neighbor_at(pos);
      if (w <= v) continue;
      if (sampler.is_open_indexed(flat.edge_id_at(pos), flat.edge_key_at(pos))) fn(v, w);
    }
  }
}

std::vector<VertexId> open_cluster_of_flat(const FlatAdjacency& flat,
                                           const EdgeSampler& sampler, VertexId source,
                                           std::uint64_t max_vertices) {
  // The BFS queue *is* the returned visit order (a vertex is enqueued
  // exactly when first visited), so one vector with a head cursor replaces
  // both the hash set and the node-based queue.
  std::vector<VertexId> order;
  detail::BfsScratch& scratch = detail::bfs_scratch();
  scratch.begin(flat.num_vertices());
  scratch.mark(source);
  order.push_back(source);
  std::size_t head = 0;
  while (head < order.size()) {
    if (max_vertices != 0 && order.size() >= max_vertices) break;
    const VertexId x = order[head++];
    const std::uint64_t end = flat.row_end(x);
    for (std::uint64_t pos = flat.row_begin(x); pos < end; ++pos) {
      const VertexId y = flat.neighbor_at(pos);
      if (scratch.seen(y)) continue;
      if (!sampler.is_open_indexed(flat.edge_id_at(pos), flat.edge_key_at(pos))) continue;
      scratch.mark(y);
      order.push_back(y);
      if (max_vertices != 0 && order.size() >= max_vertices) return order;
    }
  }
  return order;
}

std::optional<bool> open_connected_flat(const FlatAdjacency& flat, const EdgeSampler& sampler,
                                        VertexId u, VertexId v,
                                        std::uint64_t max_vertices) {
  detail::BfsScratch& scratch = detail::bfs_scratch();
  scratch.begin(flat.num_vertices());
  scratch.mark(u);
  scratch.queue.push_back(u);
  std::uint64_t count = 1;
  std::size_t head = 0;
  while (head < scratch.queue.size()) {
    const VertexId x = scratch.queue[head++];
    const std::uint64_t end = flat.row_end(x);
    for (std::uint64_t pos = flat.row_begin(x); pos < end; ++pos) {
      const VertexId y = flat.neighbor_at(pos);
      if (scratch.seen(y)) continue;
      if (!sampler.is_open_indexed(flat.edge_id_at(pos), flat.edge_key_at(pos))) continue;
      if (y == v) return true;
      scratch.mark(y);
      ++count;
      if (max_vertices != 0 && count >= max_vertices) return std::nullopt;
      scratch.queue.push_back(y);
    }
  }
  return false;
}

}  // namespace

ClusterDecomposition::ClusterDecomposition(const Topology& graph, const EdgeSampler& sampler,
                                           AdjacencyMode mode)
    : dsu_(graph.num_vertices()), largest_root_(0) {
  summary_.num_vertices = graph.num_vertices();
  const auto accumulate = [this](VertexId a, VertexId b) {
    ++summary_.num_open_edges;
    dsu_.unite(a, b);
  };
  if (const FlatAdjacency* flat = resolve_adjacency(graph, mode)) {
    for_each_open_edge(*flat, sampler, accumulate);
  } else {
    for_each_open_edge(graph, sampler, accumulate);
  }
  summary_.num_components = dsu_.num_components();
  // Scan roots for the two largest clusters.
  for (VertexId v = 0; v < summary_.num_vertices; ++v) {
    if (dsu_.find(v) != v) continue;
    const std::uint64_t size = dsu_.size_of(v);
    if (size > summary_.largest) {
      summary_.second_largest = summary_.largest;
      summary_.largest = size;
      largest_root_ = v;
    } else if (size > summary_.second_largest) {
      summary_.second_largest = size;
    }
  }
}

bool ClusterDecomposition::in_largest_cluster(VertexId v) {
  return dsu_.find(v) == largest_root_;
}

ComponentSummary analyze_components(const Topology& graph, const EdgeSampler& sampler,
                                    AdjacencyMode mode) {
  return ClusterDecomposition(graph, sampler, mode).summary();
}

std::vector<VertexId> open_cluster_of(const Topology& graph, const EdgeSampler& sampler,
                                      VertexId source, std::uint64_t max_vertices,
                                      AdjacencyMode mode) {
  if (const FlatAdjacency* flat = resolve_adjacency(graph, mode)) {
    return open_cluster_of_flat(*flat, sampler, source, max_vertices);
  }
  std::vector<VertexId> visited_order;
  std::unordered_set<VertexId> visited;
  std::queue<VertexId> queue;
  visited.insert(source);
  visited_order.push_back(source);
  queue.push(source);
  while (!queue.empty()) {
    if (max_vertices != 0 && visited_order.size() >= max_vertices) break;
    const VertexId x = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (visited.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      visited.insert(y);
      visited_order.push_back(y);
      if (max_vertices != 0 && visited_order.size() >= max_vertices) return visited_order;
      queue.push(y);
    }
  }
  return visited_order;
}

std::optional<bool> open_connected(const Topology& graph, const EdgeSampler& sampler,
                                   VertexId u, VertexId v, std::uint64_t max_vertices,
                                   AdjacencyMode mode) {
  if (u == v) return true;
  if (const FlatAdjacency* flat = resolve_adjacency(graph, mode)) {
    return open_connected_flat(*flat, sampler, u, v, max_vertices);
  }
  std::unordered_set<VertexId> visited;
  std::queue<VertexId> queue;
  visited.insert(u);
  queue.push(u);
  std::uint64_t count = 1;
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    const int deg = graph.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = graph.neighbor(x, i);
      if (visited.contains(y)) continue;
      if (!sampler.is_open(graph.edge_key(x, i))) continue;
      if (y == v) return true;
      visited.insert(y);
      ++count;
      if (max_vertices != 0 && count >= max_vertices) return std::nullopt;
      queue.push(y);
    }
  }
  return false;
}

ExplicitGraph materialize_open_subgraph(const Topology& graph, const EdgeSampler& sampler,
                                        AdjacencyMode mode) {
  ExplicitGraph::EdgeList edges;
  const auto collect = [&edges](VertexId a, VertexId b) { edges.emplace_back(a, b); };
  if (const FlatAdjacency* flat = resolve_adjacency(graph, mode)) {
    for_each_open_edge(*flat, sampler, collect);
  } else {
    for_each_open_edge(graph, sampler, collect);
  }
  return ExplicitGraph(graph.num_vertices(), edges);
}

}  // namespace faultroute
