#include "percolation/node_fault_sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "random/splitmix64.hpp"

namespace faultroute {

NodeFaultSampler::NodeFaultSampler(const Topology& graph, double node_p, double edge_p,
                                   std::uint64_t seed)
    : graph_(graph),
      node_p_(node_p),
      edge_faults_(edge_p, mix64(seed ^ 0x1357fdb97531ecaULL)),
      node_seed_(seed),
      node_threshold_(0),
      nodes_always_alive_(node_p >= 1.0),
      nodes_always_dead_(node_p <= 0.0) {
  if (std::isnan(node_p) || node_p < 0.0 || node_p > 1.0) {
    throw std::invalid_argument("NodeFaultSampler: node_p must be in [0, 1]");
  }
  if (!nodes_always_alive_ && !nodes_always_dead_) {
    node_threshold_ = static_cast<std::uint64_t>(std::ldexp(node_p, 64));
  }
}

bool NodeFaultSampler::vertex_alive(VertexId v) const {
  if (nodes_always_alive_) return true;
  if (nodes_always_dead_) return false;
  // Distinct hash domain from edges: xor with an odd tag before mixing.
  return hash_pair(node_seed_ ^ 0x9d8a7b6c5d4e3f21ULL, v) < node_threshold_;
}

bool NodeFaultSampler::is_open(EdgeKey key) const {
  const EdgeEndpoints ends = graph_.endpoints(key);
  return vertex_alive(ends.a) && vertex_alive(ends.b) && edge_faults_.is_open(key);
}

double NodeFaultSampler::survival_probability() const {
  return node_p_ * node_p_ * edge_faults_.survival_probability();
}

}  // namespace faultroute
