#include "traffic/routing_phase.hpp"

#include <memory>
#include <optional>

#include "core/parallel.hpp"
#include "traffic/shared_probe_cache.hpp"

namespace faultroute::detail {

namespace {

/// Routing proper: every message independently through the (cached)
/// environment. Messages are independent, so a work-stealing index loop with
/// a fresh-per-thread router reproduces the sequential outcome exactly.
/// With config.dense_probe_state each worker owns one ProbeArena, created
/// here in make_body and re-epoched per message, so steady-state routing
/// allocates nothing.
void route_all(const Topology& graph, const EdgeSampler& env,
               const RouterFactory& make_router,
               const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
               const FlatAdjacency* flat, std::vector<MessageOutcome>& outcomes,
               std::vector<Path>& paths) {
  parallel_index_loop(messages.size(), config.threads, [&] {
    const std::shared_ptr<Router> router = make_router();
    const std::shared_ptr<ProbeArena> arena =
        config.dense_probe_state ? std::make_shared<ProbeArena>() : nullptr;
    return [&, router, arena](std::size_t i) {
      const TrafficMessage& msg = messages[i];
      MessageOutcome& out = outcomes[i];
      out.message = msg;
      if (msg.source == msg.target) {
        out.routed = true;
        paths[i] = Path{msg.source};
        return;
      }
      ProbeContext ctx(graph, env, msg.source, router->required_mode(),
                       config.probe_budget, arena.get(), flat);
      std::optional<Path> path;
      try {
        path = router->route(ctx, msg.source, msg.target);
      } catch (const ProbeBudgetExceeded&) {
        out.censored = true;
      }
      out.distinct_probes = ctx.distinct_probes();
      if (path) {
        out.routed = true;
        // Routers may legally return walks; forwarding a loop would burn
        // capacity for nothing, so ship along the simplified path.
        paths[i] = simplify_walk(*path);
        out.path_edges = path_length(paths[i]);
      }
    };
  });
}

}  // namespace

std::vector<RoutedJourney> route_and_validate(
    const Topology& graph, const EdgeSampler& sampler, const RouterFactory& make_router,
    const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
    TrafficResult& result) {
  std::vector<Path> paths(messages.size());

  // One adjacency resolution for the whole batch: every probe, validation
  // scan, and slot resolution below goes through the same backend, so the
  // --adjacency A/B switch compares whole routing phases.
  const FlatAdjacency* flat =
      resolve_adjacency(graph, config.adjacency, config.flat_budget_vertices);
  const AdjacencyView adj(graph, flat);

  // Each probe-state backend pairs with its matching cache generation so
  // the dense_probe_state A/B switch compares whole engines, dense against
  // the sharded-map implementation it replaced. unique_edges() is the same
  // deterministic set size either way.
  std::optional<SharedProbeCache> dense_cache;
  std::optional<ShardedProbeCache> sharded_cache;
  const EdgeSampler* env = &sampler;
  if (config.use_shared_cache) {
    if (config.dense_probe_state) {
      env = &dense_cache.emplace(sampler, graph);
    } else {
      env = &sharded_cache.emplace(sampler);
    }
  }
  route_all(graph, *env, make_router, messages, config, flat, result.outcomes, paths);
  if (dense_cache) result.unique_edges_probed = dense_cache->unique_edges();
  if (sharded_cache) result.unique_edges_probed = sharded_cache->unique_edges();

  // Validate paths and resolve every hop's incident slot.
  std::vector<RoutedJourney> journeys(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    MessageOutcome& out = result.outcomes[i];
    result.total_distinct_probes += out.distinct_probes;
    if (out.censored) {
      ++result.censored;
      continue;
    }
    if (!out.routed) {
      ++result.failed_routing;
      continue;
    }
    // Validate before counting as routed, so the exact partition
    // routed + failed + censored + invalid == messages holds.
    Path& path = paths[i];
    if (config.verify_paths &&
        !is_valid_open_path(adj, sampler, path, out.message.source, out.message.target)) {
      ++result.invalid_paths;
      out.routed = false;
      out.path_edges = 0;  // the rejected path's hop count must not leak out
      continue;
    }
    RoutedJourney& journey = journeys[i];
    journey.slots.reserve(path.size() > 0 ? path.size() - 1 : 0);
    bool ok = true;
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      const int idx = adj.edge_index_of(path[step], path[step + 1]);
      if (idx < 0) {  // unreachable when verify_paths is on; defensive otherwise
        ok = false;
        break;
      }
      journey.slots.push_back(idx);
    }
    if (!ok) {
      ++result.invalid_paths;
      out.routed = false;
      out.path_edges = 0;
      journey.slots.clear();
      continue;
    }
    journey.path = std::move(path);
    ++result.routed;
  }
  return journeys;
}

}  // namespace faultroute::detail
