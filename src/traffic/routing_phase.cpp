#include "traffic/routing_phase.hpp"

#include <atomic>
#include <memory>
#include <optional>

#include "core/parallel.hpp"
#include "core/routers/bidirectional_router.hpp"
#include "core/routers/flood_router.hpp"
#include "graph/distance_oracle.hpp"
#include "obs/run_metrics.hpp"
#include "traffic/frontier_search.hpp"
#include "traffic/shared_probe_cache.hpp"

namespace faultroute::detail {

namespace {

/// Routing proper: every message independently through the (cached)
/// environment. Messages are independent, so a work-stealing index loop with
/// a fresh-per-thread router reproduces the sequential outcome exactly.
/// With config.dense_probe_state each worker owns one ProbeArena, created
/// here in make_body and re-epoched per message, so steady-state routing
/// allocates nothing.
// analyze:hot-root(routing worker body: per-message inner loop of every sweep)
void route_all(const Topology& graph, const EdgeSampler& env,
               const RouterFactory& make_router, const std::shared_ptr<Router>& prototype,
               const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
               const FlatAdjacency* flat, const DistanceOracle* oracle,
               std::vector<MessageOutcome>& outcomes, std::vector<Path>& paths) {
  // Instrumentation is resolved once, outside the loop: counter ids here,
  // then one per-worker span plus two plain-store adds per message inside.
  obs::CounterRegistry* counters =
      config.metrics != nullptr ? &config.metrics->counters() : nullptr;
  const obs::CounterRegistry::CounterId probe_calls =
      counters != nullptr ? counters->id("traffic.routing.probe_calls") : 0;
  const obs::CounterRegistry::CounterId expansions =
      counters != nullptr ? counters->id("traffic.routing.bfs_expansions") : 0;
  obs::PhaseProfiler* profiler =
      config.metrics != nullptr ? &config.metrics->profiler() : nullptr;
  // When frontier classification already constructed one router, the first
  // worker to start adopts it rather than paying a second construction
  // (landmark tables and the like live in router ctors). Factories hand out
  // identically-behaving routers — the same property that makes the
  // work-stealing loop legal — so which worker adopts it cannot matter.
  std::atomic<Router*> unclaimed{prototype.get()};
  parallel_index_loop(messages.size(), config.threads, [&] {
    // acq_rel: the claim must be unique (RMW) and the winner must observe the
    // fully-constructed prototype; thread spawn already orders the ctor, so
    // this spells the minimum ordering that keeps both properties explicit.
    const std::shared_ptr<Router> router =
        unclaimed.exchange(nullptr, std::memory_order_acq_rel) != nullptr
            ? prototype
            : make_router();
    const std::shared_ptr<ProbeArena> arena =
        config.dense_probe_state ? std::make_shared<ProbeArena>() : nullptr;
    // The worker's whole routing stint is one span on its own track; the
    // body closure (and with it the scope) is destroyed on the worker
    // thread when the worker drains, closing the span there.
    const std::shared_ptr<obs::PhaseProfiler::Scope> span =
        std::make_shared<obs::PhaseProfiler::Scope>(profiler, "route-worker");
    return [&, router, arena, span](std::size_t i) {
      const TrafficMessage& msg = messages[i];
      MessageOutcome& out = outcomes[i];
      out.message = msg;
      if (msg.source == msg.target) {
        out.routed = true;
        paths[i] = Path{msg.source};
        return;
      }
      ProbeContext ctx(graph, env, msg.source, router->required_mode(),
                       config.probe_budget, arena.get(), flat, oracle);
      std::optional<Path> path;
      try {
        path = router->route(ctx, msg.source, msg.target);
      } catch (const ProbeBudgetExceeded&) {
        out.censored = true;
      }
      out.distinct_probes = ctx.distinct_probes();
      if (counters != nullptr) {
        counters->add(probe_calls, ctx.total_probes());
        counters->add(expansions, ctx.expansions());
      }
      if (path) {
        out.routed = true;
        // Routers may legally return walks; forwarding a loop would burn
        // capacity for nothing, so ship along the simplified path.
        paths[i] = simplify_walk(*path);
        out.path_edges = path_length(paths[i]);
      }
    };
  });
}

}  // namespace

std::vector<RoutedJourney> route_and_validate(
    const Topology& graph, const EdgeSampler& sampler, const RouterFactory& make_router,
    const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
    TrafficResult& result) {
  obs::PhaseProfiler* profiler =
      config.metrics != nullptr ? &config.metrics->profiler() : nullptr;
  const obs::PhaseProfiler::Scope routing_scope(profiler, "routing");
  std::vector<Path> paths(messages.size());  // analyze:allow-hot-alloc(per-batch result array sized once)

  // One adjacency resolution for the whole batch: every probe, validation
  // scan, and slot resolution below goes through the same backend, so the
  // --adjacency A/B switch compares whole routing phases. An externally
  // provided snapshot (config.flat_snapshot — e.g. an mmap view from a
  // snapshot directory) short-circuits materialization for every mode but
  // kImplicit, which stays a pure virtual-dispatch A/B leg.
  const FlatAdjacency* flat =
      config.adjacency == AdjacencyMode::kImplicit
          ? nullptr
          : (config.flat_snapshot != nullptr
                 ? config.flat_snapshot
                 : resolve_adjacency(graph, config.adjacency, config.flat_budget_vertices));
  const AdjacencyView adj(graph, flat);

  // Each probe-state backend pairs with its matching cache generation so
  // the dense_probe_state A/B switch compares whole engines, dense against
  // the sharded-map implementation it replaced. unique_edges() is the same
  // deterministic set size either way.
  std::optional<SharedProbeCache> dense_cache;
  std::optional<ShardedProbeCache> sharded_cache;
  const EdgeSampler* env = &sampler;
  if (config.use_shared_cache) {
    if (config.dense_probe_state) {
      env = &dense_cache.emplace(sampler, graph);
    } else {
      env = &sharded_cache.emplace(sampler);  // analyze:allow-hot-alloc(per-batch cache construction)
    }
  }
  // FrontierMode::kBatch (flat path only): classify the batch's router via
  // one prototype — factories hand out identically-behaving routers, that is
  // what makes thread-parallel routing legal in the first place. Flood and
  // bidirectional batches go through the block executor; metric routers stay
  // per-message but read precomputed oracle columns instead of running one
  // BFS per graph.distance call (closed-form metrics need neither). All
  // three treatments are pure accelerations — bit-identical outcomes.
  const DistanceOracle* oracle = nullptr;
  std::optional<BatchSearchKind> batch_kind;
  bool probe_target_first = false;
  std::shared_ptr<Router> prototype;  // adopted by route_all's first worker
  if (config.frontier == FrontierMode::kBatch && flat != nullptr) {
    prototype = make_router();
    if (const auto* flood = dynamic_cast<const FloodRouter*>(prototype.get())) {
      batch_kind = BatchSearchKind::kFlood;
      probe_target_first = flood->probe_target_first();
    } else if (dynamic_cast<const BidirectionalBfsRouter*>(prototype.get()) != nullptr) {
      batch_kind = BatchSearchKind::kBidirectional;
    } else if (prototype->uses_distance_metric() && !graph.has_closed_form_metric()) {
      const obs::PhaseProfiler::Scope prewarm_scope(profiler, "oracle-prewarm");
      const DistanceOracle& cached = flat->distance_oracle();
      std::vector<VertexId> targets;
      targets.reserve(messages.size());  // analyze:allow-hot-alloc(per-batch oracle prewarm list)
      // analyze:allow-hot-alloc(per-batch oracle prewarm list)
      for (const TrafficMessage& msg : messages) targets.push_back(msg.target);
      cached.ensure_targets(targets);  // dedups; first-appearance order
      oracle = &cached;
    }
  }
  {
    const obs::PhaseProfiler::Scope route_scope(profiler, "route");
    if (batch_kind) {
      route_frontier_batched(graph, *env, messages, config, *flat, *batch_kind,
                             probe_target_first, result.outcomes, paths);
    } else {
      route_all(graph, *env, make_router, prototype, messages, config, flat, oracle,
                result.outcomes, paths);
    }
  }
  // Hit/miss totals are exact, not approximate, in this pipeline: the
  // per-message memo means each cache ever sees one lookup per (message,
  // edge), so hits + misses == total_distinct_probes and misses ==
  // unique_edges_probed, deterministically (see TrafficResult::cache_hits).
  if (dense_cache) {
    result.unique_edges_probed = dense_cache->unique_edges();
    result.cache_hits = dense_cache->approx_hits();
    result.cache_misses = dense_cache->approx_misses();
  }
  if (sharded_cache) {
    result.unique_edges_probed = sharded_cache->unique_edges();
    result.cache_hits = sharded_cache->approx_hits();
    result.cache_misses = sharded_cache->approx_misses();
  }

  // Validate paths and resolve every hop's incident slot.
  const obs::PhaseProfiler::Scope validate_scope(profiler, "validate");
  std::vector<RoutedJourney> journeys(messages.size());  // analyze:allow-hot-alloc(per-batch result array sized once)
  for (std::size_t i = 0; i < messages.size(); ++i) {
    MessageOutcome& out = result.outcomes[i];
    result.total_distinct_probes += out.distinct_probes;
    if (out.censored) {
      ++result.censored;
      continue;
    }
    if (!out.routed) {
      ++result.failed_routing;
      continue;
    }
    // Validate before counting as routed, so the exact partition
    // routed + failed + censored + invalid == messages holds.
    Path& path = paths[i];
    if (config.verify_paths &&
        !is_valid_open_path(adj, sampler, path, out.message.source, out.message.target)) {
      ++result.invalid_paths;
      out.routed = false;
      out.path_edges = 0;  // the rejected path's hop count must not leak out
      continue;
    }
    RoutedJourney& journey = journeys[i];
    journey.slots.reserve(path.size() > 0 ? path.size() - 1 : 0);  // analyze:allow-hot-alloc(journey slot materialization, reserved to hop count)
    bool ok = true;
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      const int idx = adj.edge_index_of(path[step], path[step + 1]);
      if (idx < 0) {  // unreachable when verify_paths is on; defensive otherwise
        ok = false;
        break;
      }
      journey.slots.push_back(idx);  // analyze:allow-hot-alloc(fills the reservation above)
    }
    if (!ok) {
      ++result.invalid_paths;
      out.routed = false;
      out.path_edges = 0;
      journey.slots.clear();
      continue;
    }
    journey.path = std::move(path);
    ++result.routed;
  }
  return journeys;
}

void record_traffic_counters(obs::RunMetrics& metrics, const TrafficResult& result) {
  obs::CounterRegistry& counters = metrics.counters();
  const auto sum = [&](std::string_view name, std::uint64_t value) {
    counters.add(counters.id(name), value);
  };
  sum("traffic.routing.messages", result.messages);
  sum("traffic.routing.routed", result.routed);
  sum("traffic.routing.failed_routing", result.failed_routing);
  sum("traffic.routing.censored", result.censored);
  sum("traffic.routing.invalid_paths", result.invalid_paths);
  sum("traffic.routing.distinct_probes", result.total_distinct_probes);
  sum("traffic.cache.hits", result.cache_hits);
  sum("traffic.cache.misses", result.cache_misses);
  sum("traffic.cache.unique_edges", result.unique_edges_probed);
  sum("traffic.delivery.delivered", result.delivered);
  sum("traffic.delivery.stranded", result.stranded);
  sum("traffic.delivery.sim_steps", result.sim_steps);
  sum("traffic.delivery.admission_events", result.admission_events);
  sum("traffic.delivery.transmissions", result.transmissions);
  counters.record_max(
      counters.id("traffic.delivery.peak_active_channels", obs::MergeKind::kMax),
      result.peak_active_channels);
  counters.record_max(counters.id("traffic.delivery.makespan", obs::MergeKind::kMax),
                      result.makespan);
}

}  // namespace faultroute::detail
