#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include <string>

#include "analysis/table.hpp"
#include "core/experiment.hpp"  // RouterFactory
#include "core/path.hpp"
#include "core/router.hpp"
#include "graph/flat_adjacency.hpp"
#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"
#include "traffic/message.hpp"

namespace faultroute {

namespace obs {
class RunMetrics;
}

/// How the routing phase schedules per-message searches. A pure A/B switch
/// in the mould of dense_probe_state / AdjacencyMode: every outcome,
/// aggregate, and counter is bit-identical across modes (held by
/// tests/test_frontier_search.cpp and the bench_frontier cross-check).
enum class FrontierMode {
  /// Batched frontier search (the fast default): flood and bidirectional
  /// messages run through the block executor in src/traffic/frontier_search
  /// .cpp (64 messages share bitset probe-memo words per worker), and metric
  /// routers (greedy / best-first / hybrid) read precomputed distance
  /// columns from the topology's cached DistanceOracle instead of running
  /// one BFS per graph.distance call.
  kBatch,
  /// One independent search per message, no oracle prewarm — the original
  /// code path, kept as the differential baseline.
  kPerMessage,
};

/// Parses "batch" / "permsg" (throws std::invalid_argument otherwise); the
/// inverse of frontier_mode_name.
[[nodiscard]] FrontierMode parse_frontier_mode(const std::string& name);
[[nodiscard]] std::string frontier_mode_name(FrontierMode mode);

/// Optional wall-clock instrumentation of a traffic run (see
/// TrafficConfig::timings). Purely observational: simulation results are
/// byte-identical whether or not timings are collected.
struct TrafficPhaseTimings {
  double routing_ms = 0.0;   ///< phase 1: routing + validation + journey compilation
  double delivery_ms = 0.0;  ///< phase 2: delivery simulation + aggregation
};

/// Configuration of a traffic run.
struct TrafficConfig {
  /// Messages a directed edge channel can transmit per timestep (>= 1).
  /// An undirected topology edge is two independent channels, one per
  /// direction, as in standard store-and-forward network models.
  std::uint64_t edge_capacity = 1;
  /// Probe budget per message (nullopt = unbounded); exhausting it makes the
  /// message fail routing (counted in `censored`).
  std::optional<std::uint64_t> probe_budget;
  /// Worker threads for the routing phase (0 = hardware concurrency). The
  /// result is bit-identical for every thread count.
  unsigned threads = 0;
  /// Route through a SharedProbeCache so concurrent messages amortise
  /// environment discovery. Turning it off only disables the optimisation;
  /// results are unchanged (the cache is semantically transparent).
  bool use_shared_cache = true;
  /// Back per-message probe state (memo + reached set) with epoch-stamped
  /// dense arrays pooled in per-thread ProbeArenas instead of per-message
  /// hash containers. Pure A/B switch for benchmarking and differential
  /// testing: the two backends produce bit-identical outcomes and counters
  /// (held by tests/test_dense_probe_state.cpp); dense is several times
  /// faster (bench/bench_routing.cpp), so leave it on.
  bool dense_probe_state = true;
  /// Adjacency backend for routing, validation, and journey compilation:
  /// kFlat resolves every neighbor / edge-key / edge-id query through the
  /// topology's CSR snapshot (Topology::flat_adjacency()), kImplicit through
  /// the virtual interface, kAuto picks flat iff num_vertices() fits
  /// `flat_budget_vertices`. A pure A/B switch exactly like
  /// `dense_probe_state`: outcomes and counters are bit-identical across
  /// modes (tests/test_flat_adjacency.cpp); flat is faster
  /// (bench/bench_adjacency.cpp), so leave it on auto.
  AdjacencyMode adjacency = AdjacencyMode::kAuto;
  /// kAuto's materialization budget: snapshot topologies with at most this
  /// many vertices (~20 bytes per directed channel once, cached).
  std::uint64_t flat_budget_vertices = kDefaultFlatBudgetVertices;
  /// When non-null, the routing phase resolves flat-adjacency queries
  /// through this externally provided snapshot — typically a memory-mapped
  /// view opened from a snapshot directory (graph/snapshot.hpp /
  /// open_snapshot_adjacency) — instead of materializing one via
  /// resolve_adjacency. Honoured for every adjacency mode except kImplicit,
  /// *including* kAuto above flat_budget_vertices: a mapped view costs no
  /// build, so the materialization budget does not apply and huge graphs
  /// keep the CSR fast path. Must describe the same topology (bit-identical
  /// results are pinned by tests/test_snapshot.cpp) and outlive the run.
  const FlatAdjacency* flat_snapshot = nullptr;
  /// Routing-phase scheduling strategy (see FrontierMode above). kBatch is
  /// a pure accelerator — outcomes are bit-identical to kPerMessage — and
  /// only engages on the flat adjacency path; implicit runs fall back to
  /// per-message search regardless.
  FrontierMode frontier = FrontierMode::kBatch;
  /// Verify every returned path against the environment; invalid paths are
  /// counted and the message dropped from the delivery simulation.
  bool verify_paths = true;
  /// Safety cap on simulated timesteps (0 = unbounded). With capacity >= 1
  /// every queued message eventually drains, so the cap only guards against
  /// pathological configs; messages still in flight when it is hit are
  /// counted as `stranded`.
  std::uint64_t max_steps = 0;
  /// When non-null, the engine records wall-clock phase durations here
  /// (bench instrumentation; see bench/bench_delivery.cpp). The pointee must
  /// outlive the run_traffic call. Never affects simulation results.
  TrafficPhaseTimings* timings = nullptr;
  /// When non-null, the run feeds the observability sink (src/obs/): counters
  /// for every phase, nested phase spans on the profiler, and — if its
  /// delivery sampler is enabled — a per-step delivery time-series. The
  /// pointee must outlive the run. Off (nullptr) costs one null check per
  /// site; on, simulation results are bit-identical (pinned by
  /// tests/test_observability.cpp).
  obs::RunMetrics* metrics = nullptr;
};

/// Per-message outcome, indexed by message id.
struct MessageOutcome {
  TrafficMessage message;
  bool routed = false;     // router returned a path
  bool censored = false;   // probe budget exhausted
  bool delivered = false;  // path fully traversed in the simulation
  std::uint64_t distinct_probes = 0;
  std::uint64_t path_edges = 0;
  std::uint64_t finish_time = 0;  // delivery timestep (delivered only)
  /// finish - inject - path_edges: timesteps spent waiting in queues beyond
  /// the store-and-forward minimum of one step per hop.
  std::uint64_t queueing_delay = 0;
};

/// Aggregate result of a traffic run. All fields are deterministic in
/// (graph, sampler, workload, config) — independent of thread count.
struct TrafficResult {
  std::uint64_t messages = 0;
  std::uint64_t routed = 0;
  std::uint64_t failed_routing = 0;  // router gave up (target unreachable or incomplete router)
  std::uint64_t censored = 0;        // probe budget exhausted
  std::uint64_t invalid_paths = 0;   // failed verification (router bug)
  std::uint64_t delivered = 0;
  std::uint64_t stranded = 0;        // in flight when max_steps was hit

  // Probe economics (the SharedProbeCache amortisation).
  std::uint64_t total_distinct_probes = 0;  // summed per-message Definition-2 cost
  /// Union over messages = batch discovery cost. Only tracked when
  /// use_shared_cache is on (0 otherwise).
  std::uint64_t unique_edges_probed = 0;
  /// SharedProbeCache hit/miss split of the batch's distinct probes. Exact
  /// and deterministic despite concurrent routing: ProbeContext memoises per
  /// message, so the cache sees each (message, edge) pair once, giving
  /// cache_hits + cache_misses == total_distinct_probes and
  /// cache_misses == unique_edges_probed. Both 0 when use_shared_cache is
  /// off.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// total_distinct_probes / unique_edges_probed: how many times the batch
  /// re-used each discovered edge (1.0 = no sharing; grows with batch size).
  [[nodiscard]] double probe_amortization() const {
    return unique_edges_probed == 0
               ? 0.0
               : static_cast<double>(total_distinct_probes) /
                     static_cast<double>(unique_edges_probed);
  }

  // Congestion over undirected edges (both directions pooled).
  std::uint64_t max_edge_load = 0;  // traversals of the busiest edge
  double mean_edge_load = 0.0;      // over edges carrying >= 1 message
  std::uint64_t edges_used = 0;

  // Delay and throughput.
  std::uint64_t makespan = 0;  // last delivery timestep (over delivered messages)
  double mean_queueing_delay = 0.0;
  std::uint64_t max_queueing_delay = 0;
  double mean_path_edges = 0.0;  // over delivered messages
  /// delivered messages per timestep of makespan.
  [[nodiscard]] double throughput() const {
    return makespan == 0 ? static_cast<double>(delivered)
                         : static_cast<double>(delivered) / static_cast<double>(makespan);
  }

  // Delivery-engine introspection (see docs/ARCHITECTURE.md). These expose
  // the event-driven simulator's work and footprint: its state is O(channels
  // + messages) arrays, never a function of simulated time, so long-horizon
  // runs cost steps but not memory.
  std::uint64_t sim_steps = 0;          ///< timeline steps executed (idle gaps skipped)
  std::uint64_t admission_events = 0;   ///< queue admissions, incl. one per hop taken
  std::uint64_t transmissions = 0;      ///< channel transmit events (== summed edge load)
  std::uint64_t peak_active_channels = 0;  ///< most channels simultaneously queued
  /// Directed channels of the topology's ChannelIndex (2·edges for simple
  /// graphs); the size of the engine's per-channel state. The reference
  /// engine has no index and reports 0.
  std::uint64_t channels = 0;

  std::vector<MessageOutcome> outcomes;  // indexed by message id
};

/// Discrete-time store-and-forward traffic simulation over one shared
/// percolation environment.
///
/// Phase 1 (routing, thread-parallel): every message is routed independently
/// by a fresh-per-thread router through its own ProbeContext, all layered
/// over one SharedProbeCache so environment discovery is amortised across
/// the batch. Messages are mutually independent given the (deterministic)
/// environment, so the phase parallelises with bit-identical results.
///
/// Phase 2 (delivery, sequential): the chosen paths are driven hop-by-hop
/// through per-channel FIFO queues with `edge_capacity` transmissions per
/// directed channel per timestep. Simultaneous queue admissions are ordered
/// by message id, making the whole simulation deterministic. The phase is
/// event-driven over the topology's dense ChannelIndex: journeys compile to
/// flat channel-id arrays, arrivals flow through a two-bucket calendar (one
/// hop costs exactly one step, so only the next step is ever scheduled, and
/// injection gaps are skipped by cursor), and per-channel FIFOs are intrusive
/// lists threaded through a single per-message `next` array — state is
/// O(channels + messages), independent of simulated time.
///
/// Preconditions (all guaranteed by generate_workload): message ids are the
/// dense indices 0..messages.size()-1 in vector order, inject_times are
/// nondecreasing, and every source/target is a distinct valid vertex of
/// `graph`. config.edge_capacity >= 1. At most 2^32 - 1 messages (ids are
/// 32-bit throughout the engine); more throws std::invalid_argument rather
/// than silently aliasing ids.
///
/// Thread-safety: `graph` and `sampler` are only read (both must be
/// internally thread-safe under const access, which all library topologies
/// and samplers are); `make_router` is invoked once per worker thread, and
/// each returned router is driven by that worker alone. The caller keeps
/// all four arguments alive for the duration of the call.
///
/// Units: all times (inject/finish/makespan/delay, max_steps) are discrete
/// simulation timesteps; loads count message traversals of an edge.
///
/// Postcondition: the returned outcomes vector is indexed by message id,
/// and every field of TrafficResult depends only on (graph, sampler,
/// messages, config) — never on config.threads.
[[nodiscard]] TrafficResult run_traffic(const Topology& graph, const EdgeSampler& sampler,
                                        const RouterFactory& make_router,
                                        const std::vector<TrafficMessage>& messages,
                                        const TrafficConfig& config);

/// The pre-rewrite delivery engine, retained as a differential-testing
/// oracle: identical contract and results to run_traffic — the golden
/// equivalence suite (tests/test_traffic_golden.cpp) holds them bit-for-bit
/// equal on every curated scenario sweep — but phase 2 runs on node-based
/// ordered containers (std::map timeline, std::set busy list, per-channel
/// deques), so it is several times slower and its queue table grows with
/// every distinct channel ever used. Only `TrafficResult::channels` differs:
/// the reference engine has no channel index and reports 0. Use run_traffic
/// everywhere; use this to cross-check engine changes and in
/// bench/bench_delivery.cpp to measure the gap.
[[nodiscard]] TrafficResult run_traffic_reference(const Topology& graph,
                                                  const EdgeSampler& sampler,
                                                  const RouterFactory& make_router,
                                                  const std::vector<TrafficMessage>& messages,
                                                  const TrafficConfig& config);

/// Renders the aggregate metrics as a two-column report table.
[[nodiscard]] Table traffic_table(const TrafficResult& result);

}  // namespace faultroute
