#include "traffic/traffic_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/edge_load.hpp"
#include "graph/channel_index.hpp"
#include "obs/run_metrics.hpp"
#include "traffic/routing_phase.hpp"

namespace faultroute {

namespace {

/// Sentinel for "no message" in the intrusive per-channel FIFOs.
constexpr std::uint32_t kNoMessage = std::numeric_limits<std::uint32_t>::max();

/// Milliseconds since `since`, for the optional phase instrumentation.
double ms_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// analyze:hot-root(event-engine step loop: per-step delivery scheduling)
TrafficResult run_traffic(const Topology& graph, const EdgeSampler& sampler,
                          const RouterFactory& make_router,
                          const std::vector<TrafficMessage>& messages,
                          const TrafficConfig& config) {
  if (config.edge_capacity == 0) {
    // analyze:allow-throw-safety(argument validation before any phase starts)
    throw std::invalid_argument("run_traffic: edge_capacity must be >= 1");
  }
  if (messages.size() > std::numeric_limits<std::uint32_t>::max()) {
    // analyze:allow-throw-safety(argument validation before any phase starts)
    throw std::invalid_argument(
        "run_traffic: message ids are 32-bit; at most 4294967295 messages per run");
  }
  TrafficResult result;
  result.messages = messages.size();
  result.outcomes.resize(messages.size());  // analyze:allow-hot-alloc(per-batch result array sized once)
  obs::PhaseProfiler* profiler =
      config.metrics != nullptr ? &config.metrics->profiler() : nullptr;
  obs::DeliverySampler* sampler_ts =
      config.metrics != nullptr ? config.metrics->delivery_sampler() : nullptr;
  const auto phase_start = std::chrono::steady_clock::now();

  // ---------------------------------------------------------- phase 1: route
  const auto journeys =
      detail::route_and_validate(graph, sampler, make_router, messages, config, result);

  // -------------------------------------------------------- phase 2: deliver
  // Event-driven store-and-forward over dense directed-channel ids. Semantics
  // are identical to the reference engine (see run_traffic_reference): at
  // each timestep, messages due now are admitted to their next channel queue
  // in ascending-id order, then every non-empty channel transmits up to
  // `edge_capacity` messages, which arrive at the far endpoint next step.
  const ChannelIndex& index = graph.channel_index();
  result.channels = index.num_channels();

  // Journeys compiled flat: one uint32 channel id per hop, all hops
  // concatenated; per message a [cursor, end) window into the flat array.
  std::optional<obs::PhaseProfiler::Scope> compile_scope;
  compile_scope.emplace(profiler, "compile");
  std::uint64_t total_hops = 0;
  for (const auto& journey : journeys) total_hops += journey.slots.size();
  std::vector<std::uint32_t> hop_channel;
  hop_channel.reserve(total_hops);  // analyze:allow-hot-alloc(per-batch journey compilation, reserved to total hops)
  std::vector<std::uint64_t> hop_cursor(messages.size(), 0);  // analyze:allow-hot-alloc(per-batch journey compilation)
  std::vector<std::uint64_t> hop_end(messages.size(), 0);  // analyze:allow-hot-alloc(per-batch journey compilation)
  // channel_of is pure offset arithmetic over the same prefix-sum table the
  // flat snapshot borrows, so compiling against the index is already
  // compiling against the snapshot — no adjacency-mode branch needed here.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    hop_cursor[i] = hop_channel.size();
    const auto& journey = journeys[i];
    for (std::size_t step = 0; step < journey.slots.size(); ++step) {
      // analyze:allow-hot-alloc(fills the reservation above)
      hop_channel.push_back(index.channel_of(journey.path[step], journey.slots[step]));
    }
    hop_end[i] = hop_channel.size();
  }
  compile_scope.reset();
  const auto delivery_start = std::chrono::steady_clock::now();
  if (config.timings) {
    config.timings->routing_ms =
        std::chrono::duration<double, std::milli>(delivery_start - phase_start).count();
  }
  std::optional<obs::PhaseProfiler::Scope> delivery_scope;
  delivery_scope.emplace(profiler, "delivery");

  // Injections, sorted by (time, id) — the order the timeline consumes them.
  // Workloads arrive presorted (generate_workload's contract), making this a
  // no-op scan; sorting anyway keeps hand-built message lists exact too.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> injections;
  injections.reserve(messages.size());  // analyze:allow-hot-alloc(per-batch injection timeline)
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!result.outcomes[i].routed) continue;
    // analyze:allow-hot-alloc(fills the reservation above)
    injections.emplace_back(messages[i].inject_time, static_cast<std::uint32_t>(i));
  }
  std::sort(injections.begin(), injections.end());
  std::uint64_t in_flight = injections.size();

  // Per-channel FIFO queues as intrusive singly-linked lists threaded through
  // one per-message `next` slot: a message sits in at most one queue, so no
  // allocation ever happens inside the simulation loop, and queue state is
  // bounded by (channels + messages) by construction — drained-queue leak of
  // the container-based engine is impossible.
  std::vector<std::uint32_t> queue_head(index.num_channels(), kNoMessage);  // analyze:allow-hot-alloc(per-batch queue state sized once)
  std::vector<std::uint32_t> queue_tail(index.num_channels(), kNoMessage);  // analyze:allow-hot-alloc(per-batch queue state sized once)
  std::vector<std::uint32_t> next_in_queue(messages.size(), kNoMessage);  // analyze:allow-hot-alloc(per-batch queue state sized once)
  std::vector<std::uint32_t> active;  // channels with a non-empty queue

  // Per-channel transmission counts, accumulated densely; `used` remembers
  // first touches so aggregation never scans the whole channel space.
  std::vector<std::uint64_t> channel_load(index.num_channels(), 0);  // analyze:allow-hot-alloc(per-batch load accumulators sized once)
  std::vector<std::uint32_t> used_channels;

  // Two-bucket calendar: a hop costs exactly one step, so every transmission
  // lands in the very next bucket, and the only other event source —
  // injections — is consumed from the sorted array by cursor. `arrivals`
  // holds the ids due at the current time t, `next_arrivals` those due t+1.
  std::vector<std::uint32_t> arrivals;
  std::vector<std::uint32_t> next_arrivals;
  std::size_t injected = 0;

  std::uint64_t t = 0;
  std::uint64_t steps = 0;
  while (in_flight > 0 &&
         (injected < injections.size() || !arrivals.empty() || !active.empty())) {
    if (active.empty() && arrivals.empty()) t = injections[injected].first;  // skip idle gap
    if (config.max_steps != 0 && steps >= config.max_steps) break;
    ++steps;

    // Admissions due now: mid-journey arrivals merged with fresh injections,
    // processed in ascending id order (the deterministic FIFO tie-break).
    std::uint64_t injected_now = 0;
    while (injected < injections.size() && injections[injected].first == t) {
      arrivals.push_back(injections[injected].second);  // analyze:allow-hot-alloc(amortized calendar bucket; capacity is retained across steps)
      ++injected;
      ++injected_now;
    }
    std::sort(arrivals.begin(), arrivals.end());
    result.admission_events += arrivals.size();
    for (const std::uint32_t id : arrivals) {
      if (hop_cursor[id] == hop_end[id]) {
        MessageOutcome& out = result.outcomes[id];
        out.delivered = true;
        out.finish_time = t;
        out.queueing_delay = t - out.message.inject_time - out.path_edges;
        --in_flight;
        continue;
      }
      const std::uint32_t channel = hop_channel[hop_cursor[id]];
      next_in_queue[id] = kNoMessage;
      if (queue_head[channel] == kNoMessage) {
        queue_head[channel] = queue_tail[channel] = id;
        active.push_back(channel);  // analyze:allow-hot-alloc(active list bounded by channels; capacity retained across steps)
      } else {
        next_in_queue[queue_tail[channel]] = id;
        queue_tail[channel] = id;
      }
    }
    arrivals.clear();
    result.peak_active_channels = std::max<std::uint64_t>(result.peak_active_channels,
                                                          active.size());

    // Transmit up to `edge_capacity` per active channel; drained channels
    // leave the active list by swap-removal (order across channels is
    // irrelevant: arrivals are re-sorted by id next step).
    for (std::size_t k = 0; k < active.size();) {
      const std::uint32_t channel = active[k];
      for (std::uint64_t slot = 0;
           slot < config.edge_capacity && queue_head[channel] != kNoMessage; ++slot) {
        const std::uint32_t id = queue_head[channel];
        queue_head[channel] = next_in_queue[id];
        ++hop_cursor[id];
        // analyze:allow-hot-alloc(first-touch record, one append per distinct channel)
        if (channel_load[channel] == 0) used_channels.push_back(channel);
        ++channel_load[channel];
        next_arrivals.push_back(id);  // analyze:allow-hot-alloc(amortized calendar bucket; capacity is retained across steps)
      }
      if (queue_head[channel] == kNoMessage) {
        queue_tail[channel] = kNoMessage;
        active[k] = active.back();
        active.pop_back();
      } else {
        ++k;
      }
    }
    if (sampler_ts != nullptr) {
      // End-of-step snapshot. Queue depth needs no scan: in_flight splits
      // exactly into not-yet-injected + arriving-next-step + sitting-in-FIFOs.
      obs::DeliverySampler::Sample sample;
      sample.time = t;
      sample.step = steps - 1;
      sample.active_channels = active.size();
      sample.in_transit = next_arrivals.size();
      sample.queued =
          in_flight - (injections.size() - injected) - next_arrivals.size();
      sample.injections = injected_now;
      sampler_ts->record(sample);
    }
    ++t;
    arrivals.swap(next_arrivals);
  }
  result.stranded = in_flight;
  result.sim_steps = steps;

  // ------------------------------------------------------------- aggregation
  delivery_scope.reset();
  const obs::PhaseProfiler::Scope aggregate_scope(profiler, "aggregate");
  const EdgeLoadStats congestion = summarize_channel_load(index, channel_load, used_channels);
  result.transmissions = congestion.total;
  result.max_edge_load = congestion.max_load;
  result.edges_used = congestion.edges_used;
  result.mean_edge_load = congestion.mean_load;

  double delay_sum = 0.0;
  double hops_sum = 0.0;
  for (const MessageOutcome& out : result.outcomes) {
    if (!out.delivered) continue;
    ++result.delivered;
    result.makespan = std::max(result.makespan, out.finish_time);
    delay_sum += static_cast<double>(out.queueing_delay);
    result.max_queueing_delay = std::max(result.max_queueing_delay, out.queueing_delay);
    hops_sum += static_cast<double>(out.path_edges);
  }
  if (result.delivered > 0) {
    result.mean_queueing_delay = delay_sum / static_cast<double>(result.delivered);
    result.mean_path_edges = hops_sum / static_cast<double>(result.delivered);
  }
  if (config.timings) config.timings->delivery_ms = ms_since(delivery_start);
  if (config.metrics != nullptr) detail::record_traffic_counters(*config.metrics, result);
  return result;
}

// analyze:det-root(CLI result table: every value must be run-stable)
Table traffic_table(const TrafficResult& result) {
  Table table({"metric", "value"});
  table.add_row({"messages", Table::fmt(result.messages)});
  table.add_row({"routed", Table::fmt(result.routed)});
  table.add_row({"failed routing", Table::fmt(result.failed_routing)});
  table.add_row({"censored (budget)", Table::fmt(result.censored)});
  table.add_row({"invalid paths", Table::fmt(result.invalid_paths)});
  table.add_row({"delivered", Table::fmt(result.delivered)});
  table.add_row({"stranded", Table::fmt(result.stranded)});
  table.add_row({"total distinct probes", Table::fmt(result.total_distinct_probes)});
  table.add_row({"unique edges probed", Table::fmt(result.unique_edges_probed)});
  table.add_row({"probe cache hits", Table::fmt(result.cache_hits)});
  table.add_row({"probe cache misses", Table::fmt(result.cache_misses)});
  table.add_row({"probe amortization", Table::fmt(result.probe_amortization(), 2)});
  table.add_row({"max edge load", Table::fmt(result.max_edge_load)});
  table.add_row({"mean edge load", Table::fmt(result.mean_edge_load, 2)});
  table.add_row({"edges used", Table::fmt(result.edges_used)});
  table.add_row({"mean path edges", Table::fmt(result.mean_path_edges, 2)});
  table.add_row({"mean queueing delay", Table::fmt(result.mean_queueing_delay, 2)});
  table.add_row({"max queueing delay", Table::fmt(result.max_queueing_delay)});
  table.add_row({"makespan", Table::fmt(result.makespan)});
  table.add_row({"throughput (msgs/step)", Table::fmt(result.throughput(), 3)});
  table.add_row({"sim steps", Table::fmt(result.sim_steps)});
  table.add_row({"admission events", Table::fmt(result.admission_events)});
  table.add_row({"transmissions", Table::fmt(result.transmissions)});
  table.add_row({"peak active channels", Table::fmt(result.peak_active_channels)});
  table.add_row({"directed channels", Table::fmt(result.channels)});
  return table;
}

}  // namespace faultroute
