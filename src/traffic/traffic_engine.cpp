#include "traffic/traffic_engine.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/edge_load.hpp"
#include "core/parallel.hpp"
#include "random/splitmix64.hpp"
#include "traffic/shared_probe_cache.hpp"

namespace faultroute {

namespace {

/// A directed transmission channel: the undirected edge `key` traversed out
/// of vertex `from`. The two directions of an edge queue independently.
using ChannelKey = std::pair<EdgeKey, VertexId>;

struct ChannelHash {
  std::size_t operator()(const ChannelKey& c) const noexcept {
    return static_cast<std::size_t>(hash_pair(c.first, c.second));
  }
};

/// One message's routed journey: the channel of every hop, in order.
struct Journey {
  std::vector<ChannelKey> hops;
  std::size_t next_hop = 0;
};

/// Phase 1: route every message through the (cached) environment.
/// Messages are independent, so a work-stealing index loop with a
/// fresh-per-thread router reproduces the sequential outcome exactly.
void route_all(const Topology& graph, const EdgeSampler& env,
               const RouterFactory& make_router,
               const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
               std::vector<MessageOutcome>& outcomes, std::vector<Path>& paths) {
  parallel_index_loop(messages.size(), config.threads, [&] {
    const std::shared_ptr<Router> router = make_router();
    return [&, router](std::size_t i) {
      const TrafficMessage& msg = messages[i];
      MessageOutcome& out = outcomes[i];
      out.message = msg;
      if (msg.source == msg.target) {
        out.routed = true;
        paths[i] = Path{msg.source};
        return;
      }
      ProbeContext ctx(graph, env, msg.source, router->required_mode(),
                       config.probe_budget);
      std::optional<Path> path;
      try {
        path = router->route(ctx, msg.source, msg.target);
      } catch (const ProbeBudgetExceeded&) {
        out.censored = true;
      }
      out.distinct_probes = ctx.distinct_probes();
      if (path) {
        out.routed = true;
        // Routers may legally return walks; forwarding a loop would burn
        // capacity for nothing, so ship along the simplified path.
        paths[i] = simplify_walk(*path);
        out.path_edges = path_length(paths[i]);
      }
    };
  });
}

}  // namespace

TrafficResult run_traffic(const Topology& graph, const EdgeSampler& sampler,
                          const RouterFactory& make_router,
                          const std::vector<TrafficMessage>& messages,
                          const TrafficConfig& config) {
  if (config.edge_capacity == 0) {
    throw std::invalid_argument("run_traffic: edge_capacity must be >= 1");
  }
  TrafficResult result;
  result.messages = messages.size();
  result.outcomes.resize(messages.size());
  std::vector<Path> paths(messages.size());

  // ---------------------------------------------------------- phase 1: route
  std::optional<SharedProbeCache> cache;
  if (config.use_shared_cache) cache.emplace(sampler);
  const EdgeSampler& env = config.use_shared_cache ? static_cast<const EdgeSampler&>(*cache)
                                                   : sampler;
  route_all(graph, env, make_router, messages, config, result.outcomes, paths);
  if (cache) result.unique_edges_probed = cache->unique_edges();

  // Validate paths and compile journeys (per-hop channel keys).
  std::vector<Journey> journeys(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    MessageOutcome& out = result.outcomes[i];
    result.total_distinct_probes += out.distinct_probes;
    if (out.censored) {
      ++result.censored;
      continue;
    }
    if (!out.routed) {
      ++result.failed_routing;
      continue;
    }
    // Validate before counting as routed, so the exact partition
    // routed + failed + censored + invalid == messages holds.
    const Path& path = paths[i];
    if (config.verify_paths &&
        !is_valid_open_path(graph, sampler, path, out.message.source, out.message.target)) {
      ++result.invalid_paths;
      out.routed = false;
      continue;
    }
    Journey& journey = journeys[i];
    journey.hops.reserve(path.size() > 0 ? path.size() - 1 : 0);
    bool ok = true;
    for (std::size_t step = 0; step + 1 < path.size(); ++step) {
      const int idx = edge_index_of(graph, path[step], path[step + 1]);
      if (idx < 0) {  // unreachable when verify_paths is on; defensive otherwise
        ok = false;
        break;
      }
      journey.hops.emplace_back(graph.edge_key(path[step], idx), path[step]);
    }
    if (!ok) {
      ++result.invalid_paths;
      out.routed = false;
      journey.hops.clear();
      continue;
    }
    ++result.routed;
  }

  // -------------------------------------------------------- phase 2: deliver
  // Discrete-time store-and-forward: at each step, first admit arriving
  // messages to their next channel queue (ordered by message id, so the
  // simulation is deterministic), then every channel transmits up to
  // `edge_capacity` messages, which arrive at the far endpoint next step.
  std::unordered_map<ChannelKey, std::deque<std::uint32_t>, ChannelHash> queues;
  std::set<ChannelKey> busy;  // ordered: deterministic iteration
  std::map<std::uint64_t, std::vector<std::uint32_t>> admissions;  // time -> ids
  std::unordered_map<EdgeKey, std::uint64_t> edge_load;

  std::uint64_t in_flight = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!result.outcomes[i].routed) continue;
    admissions[messages[i].inject_time].push_back(static_cast<std::uint32_t>(i));
    ++in_flight;
  }

  std::uint64_t t = 0;
  std::uint64_t steps = 0;
  while (in_flight > 0 && (!admissions.empty() || !busy.empty())) {
    if (busy.empty()) t = admissions.begin()->first;  // skip idle gaps
    if (config.max_steps != 0 && steps >= config.max_steps) break;
    ++steps;

    const auto due = admissions.find(t);
    if (due != admissions.end()) {
      std::sort(due->second.begin(), due->second.end());
      for (const std::uint32_t id : due->second) {
        Journey& journey = journeys[id];
        if (journey.next_hop == journey.hops.size()) {
          MessageOutcome& out = result.outcomes[id];
          out.delivered = true;
          out.finish_time = t;
          out.queueing_delay = t - out.message.inject_time - out.path_edges;
          --in_flight;
          continue;
        }
        const ChannelKey& channel = journey.hops[journey.next_hop];
        queues[channel].push_back(id);
        busy.insert(channel);
      }
      admissions.erase(due);
    }

    std::vector<ChannelKey> drained;
    for (const ChannelKey& channel : busy) {
      std::deque<std::uint32_t>& queue = queues[channel];
      for (std::uint64_t slot = 0; slot < config.edge_capacity && !queue.empty(); ++slot) {
        const std::uint32_t id = queue.front();
        queue.pop_front();
        ++journeys[id].next_hop;
        ++edge_load[channel.first];
        admissions[t + 1].push_back(id);
      }
      if (queue.empty()) drained.push_back(channel);
    }
    for (const ChannelKey& channel : drained) busy.erase(channel);
    ++t;
  }
  result.stranded = in_flight;

  // ------------------------------------------------------------- aggregation
  const EdgeLoadStats congestion = summarize_edge_load(edge_load);
  result.max_edge_load = congestion.max_load;
  result.edges_used = congestion.edges_used;
  result.mean_edge_load = congestion.mean_load;

  double delay_sum = 0.0;
  double hops_sum = 0.0;
  for (const MessageOutcome& out : result.outcomes) {
    if (!out.delivered) continue;
    ++result.delivered;
    result.makespan = std::max(result.makespan, out.finish_time);
    delay_sum += static_cast<double>(out.queueing_delay);
    result.max_queueing_delay = std::max(result.max_queueing_delay, out.queueing_delay);
    hops_sum += static_cast<double>(out.path_edges);
  }
  if (result.delivered > 0) {
    result.mean_queueing_delay = delay_sum / static_cast<double>(result.delivered);
    result.mean_path_edges = hops_sum / static_cast<double>(result.delivered);
  }
  return result;
}

Table traffic_table(const TrafficResult& result) {
  Table table({"metric", "value"});
  table.add_row({"messages", Table::fmt(result.messages)});
  table.add_row({"routed", Table::fmt(result.routed)});
  table.add_row({"failed routing", Table::fmt(result.failed_routing)});
  table.add_row({"censored (budget)", Table::fmt(result.censored)});
  table.add_row({"invalid paths", Table::fmt(result.invalid_paths)});
  table.add_row({"delivered", Table::fmt(result.delivered)});
  table.add_row({"stranded", Table::fmt(result.stranded)});
  table.add_row({"total distinct probes", Table::fmt(result.total_distinct_probes)});
  table.add_row({"unique edges probed", Table::fmt(result.unique_edges_probed)});
  table.add_row({"probe amortization", Table::fmt(result.probe_amortization(), 2)});
  table.add_row({"max edge load", Table::fmt(result.max_edge_load)});
  table.add_row({"mean edge load", Table::fmt(result.mean_edge_load, 2)});
  table.add_row({"edges used", Table::fmt(result.edges_used)});
  table.add_row({"mean path edges", Table::fmt(result.mean_path_edges, 2)});
  table.add_row({"mean queueing delay", Table::fmt(result.mean_queueing_delay, 2)});
  table.add_row({"max queueing delay", Table::fmt(result.max_queueing_delay)});
  table.add_row({"makespan", Table::fmt(result.makespan)});
  table.add_row({"throughput (msgs/step)", Table::fmt(result.throughput(), 3)});
  return table;
}

}  // namespace faultroute
