#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "traffic/message.hpp"

namespace faultroute {

/// Demand patterns for the traffic engine. Each generator is deterministic
/// in (topology size, config), so a scenario is reproducible from its spec.
///
///  * kPermutation: one message per source under random permutations of the
///    vertex set (the classical setting of the emulation literature the paper
///    cites — Valiant/Håstad-style permutation routing). Fixed points are
///    skipped; if more messages are requested than vertices, additional
///    independent permutation rounds are drawn.
///  * kRandomPairs: independent uniform (source, target) pairs.
///  * kHotspot: all messages target one vertex (all-to-one); the adversarial
///    pattern that saturates the target's incident edges.
///  * kBisection: sources in the first half of the vertex range, targets in
///    the second half — stresses the bisection bandwidth.
///  * kPoisson: like kRandomPairs but open-loop — arrivals follow a Poisson
///    process of `arrival_rate` messages per timestep instead of all
///    arriving at t=0.
enum class WorkloadKind { kPermutation, kRandomPairs, kHotspot, kBisection, kPoisson };

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kPermutation;
  /// Number of messages to generate.
  std::uint64_t messages = 1024;
  /// Seed for the demand pattern (the environment has its own seed).
  std::uint64_t seed = 1;
  /// Target vertex of the kHotspot pattern; must be < num_vertices of the
  /// graph the workload is generated on.
  VertexId hotspot_target = 0;
  /// Mean arrivals per discrete timestep for kPoisson (must be > 0).
  /// Inter-arrival gaps are exponential with mean 1/arrival_rate timesteps,
  /// floored onto the integer clock.
  double arrival_rate = 1.0;
};

/// Parses a workload name ("permutation", "random-pairs", "hotspot",
/// "bisection", "poisson"); throws std::invalid_argument on anything else.
[[nodiscard]] WorkloadKind parse_workload(const std::string& name);

/// The canonical name of a workload kind (inverse of parse_workload).
[[nodiscard]] std::string workload_name(WorkloadKind kind);

/// All accepted workload names, for help text.
[[nodiscard]] std::vector<std::string> workload_names();

/// Generates the message list for `config` on `graph`.
///
/// Preconditions: graph.num_vertices() >= 2; config.messages <= 2^32 - 1
/// (message ids are 32-bit; more would alias); for kHotspot,
/// config.hotspot_target < num_vertices; for kPoisson,
/// config.arrival_rate > 0 — violations throw std::invalid_argument.
///
/// Postconditions: exactly config.messages messages with dense ids 0..n-1
/// in nondecreasing inject_time order and source != target for every
/// message. The result is a pure function of (graph.num_vertices(), config):
/// same inputs, same workload, on any machine or thread count.
///
/// Thread-safety: `graph` is only read; concurrent calls with separate
/// configs are safe.
[[nodiscard]] std::vector<TrafficMessage> generate_workload(const Topology& graph,
                                                            const WorkloadConfig& config);

}  // namespace faultroute
