#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/topology.hpp"
#include "percolation/edge_sampler.hpp"

namespace faultroute {

class ChannelIndex;

/// A concurrency-safe memoising layer over an EdgeSampler, shared by every
/// message of a traffic batch.
///
/// Single-pair routing pays the full discovery cost of its environment; a
/// batch of concurrent messages probing one shared environment should not.
/// The cache records the answer the first time any message probes an edge,
/// so the *environment* cost of a batch is the number of distinct edges
/// probed by the union of all messages — per-message cost amortises toward
/// zero as the batch grows and working sets overlap. This is the traffic
/// engine's key hot-path optimisation.
///
/// Storage is one atomic byte per undirected edge of the topology, indexed
/// by the dense edge ids of its ChannelIndex, holding a tri-state:
/// unknown / closed / open. A probe is a single relaxed-free array load —
/// no mutex, no hashing, no node allocation (the pre-rewrite cache was 64
/// mutex-sharded unordered_maps, a lock acquisition plus a hash walk per
/// probe). Unknown slots are resolved by querying the base sampler
/// *outside* any critical section and publishing the answer with a CAS.
///
/// Correctness under threads: the underlying sampler is a deterministic
/// pure function of the edge key, so two threads racing to resolve the same
/// edge compute the same value — whichever CAS wins publishes it, the loser
/// discards a byte-identical duplicate, and every quantity derived from
/// probe *answers* is bit-identical across thread counts. So is
/// `unique_edges()`: the set of published edges depends only on which edges
/// the batch probes, never on the interleaving. The hit/miss counters are
/// exact in total (every probe is exactly one hit or one miss, and a miss
/// is counted only by the CAS winner, so hits + misses == probe calls and
/// misses == unique_edges()); only the attribution of any single racing
/// probe to hit-vs-miss is decided by the race.
class SharedProbeCache final : public EdgeSampler {
 public:
  /// `base` must outlive the cache and be thread-safe under const access
  /// (all library samplers are; they are pure functions of the edge key).
  /// `graph` is the topology whose edges will be probed — its ChannelIndex
  /// supplies the dense edge-id space backing the state array.
  SharedProbeCache(const EdgeSampler& base, const Topology& graph);

  /// Returns the cached answer, querying (and caching) `base` on first
  /// touch. Resolves `key` to its dense edge id by scanning the incident
  /// slots of one endpoint — O(degree), for callers that hold only a key;
  /// the routing hot path holds ids and goes through is_open_indexed.
  [[nodiscard]] bool is_open(EdgeKey key) const override;

  /// The O(1) entry point: one atomic array load on a hit. `edge_id` must
  /// be `key`'s id under the constructor topology's ChannelIndex (the dense
  /// ProbeContext backend passes exactly that).
  [[nodiscard]] bool is_open_indexed(std::uint32_t edge_id, EdgeKey key) const override;

  [[nodiscard]] double survival_probability() const override {
    return base_.survival_probability();
  }

  /// Number of distinct edges whose state has been discovered — the batch's
  /// total environment-discovery cost. Deterministic across thread counts.
  [[nodiscard]] std::uint64_t unique_edges() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Exact probe counters: hits + misses == is_open* calls, and misses ==
  /// unique_edges() (a miss is counted only on actual publication, never by
  /// the loser of a resolution race).
  [[nodiscard]] std::uint64_t approx_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t approx_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint8_t kUnknown = 0;
  static constexpr std::uint8_t kClosed = 1;
  static constexpr std::uint8_t kOpen = 2;

  const EdgeSampler& base_;
  const Topology& graph_;
  const ChannelIndex& channels_;
  /// Tri-state per undirected edge id; unique_ptr because atomics are
  /// neither copyable nor movable (std::vector would demand both).
  std::unique_ptr<std::atomic<std::uint8_t>[]> states_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// The pre-rewrite cache, retained as the differential-testing and A/B
/// baseline for the hash probe-state backend (TrafficConfig::
/// dense_probe_state = false), exactly as run_traffic_reference preserves
/// the container-based delivery engine: a mutex-sharded unordered_map keyed
/// by EdgeKey, preserved behaviour-for-behaviour so bench_routing compares
/// the dense rewrite against what it actually replaced — not against a shim.
/// The one deliberate change is the miss-counter fix (a first-probe race
/// used to bump misses_ for every racer; now only the racer whose emplace
/// actually inserts counts a miss), so hits + misses == probe calls and
/// misses == unique_edges() here too. Same determinism argument as the
/// dense cache: the sampler is pure, so insert races are value-identical.
class ShardedProbeCache final : public EdgeSampler {
 public:
  explicit ShardedProbeCache(const EdgeSampler& base);

  [[nodiscard]] bool is_open(EdgeKey key) const override;

  [[nodiscard]] double survival_probability() const override {
    return base_.survival_probability();
  }

  /// Number of distinct edges discovered (cache entries). Deterministic
  /// across thread counts, == approx_misses() after the counter fix.
  [[nodiscard]] std::uint64_t unique_edges() const;

  [[nodiscard]] std::uint64_t approx_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t approx_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mutex;
    // lint:allow-hash(pre-rewrite A/B baseline, behaviour preserved deliberately)
    std::unordered_map<EdgeKey, bool> memo;
  };

  const EdgeSampler& base_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace faultroute
