#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "percolation/edge_sampler.hpp"

namespace faultroute {

/// A concurrency-safe memoising layer over an EdgeSampler, shared by every
/// message of a traffic batch.
///
/// Single-pair routing pays the full discovery cost of its environment; a
/// batch of concurrent messages probing one shared environment should not.
/// The cache records the answer the first time any message probes an edge,
/// so the *environment* cost of a batch is the number of distinct edges
/// probed by the union of all messages — per-message cost amortises toward
/// zero as the batch grows and working sets overlap. This is the traffic
/// engine's key hot-path optimisation.
///
/// Correctness under threads: the underlying sampler is a deterministic pure
/// function of the edge key, so the cached value is identical no matter which
/// thread inserts it first — every quantity derived from probe *answers* is
/// bit-identical across thread counts. The hit/miss counters are the only
/// exception (two threads can race to first-probe the same edge and both
/// count a miss); they are diagnostics, not results. `unique_edges()` — the
/// deterministic amortisation measure — counts cache entries, not events.
///
/// The map is sharded by a mixed hash of the edge key to keep lock
/// contention negligible relative to router work.
class SharedProbeCache final : public EdgeSampler {
 public:
  /// `base` must outlive the cache and be thread-safe under const access
  /// (all library samplers are; they are pure functions of the edge key).
  explicit SharedProbeCache(const EdgeSampler& base);

  /// Returns the cached answer, querying (and caching) `base` on first touch.
  [[nodiscard]] bool is_open(EdgeKey key) const override;

  [[nodiscard]] double survival_probability() const override {
    return base_.survival_probability();
  }

  /// Number of distinct edges whose state has been discovered — the batch's
  /// total environment-discovery cost. Deterministic across thread counts.
  [[nodiscard]] std::uint64_t unique_edges() const;

  /// Approximate probe counters (racy under concurrency; diagnostics only).
  [[nodiscard]] std::uint64_t approx_hits() const { return hits_.load(); }
  [[nodiscard]] std::uint64_t approx_misses() const { return misses_.load(); }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<EdgeKey, bool> memo;
  };

  const EdgeSampler& base_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace faultroute
