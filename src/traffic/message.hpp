#pragma once

#include <cstdint>

#include "graph/topology.hpp"

namespace faultroute {

/// One message of a traffic workload: a routing demand injected into the
/// shared percolation environment at a discrete timestep.
///
/// Ids are dense indices [0, num_messages) assigned by the workload
/// generator; the engine uses them as deterministic tie-breakers wherever
/// simultaneous events must be ordered (FIFO queue admission), which is what
/// makes the simulation independent of thread count.
struct TrafficMessage {
  std::uint32_t id = 0;
  VertexId source = 0;
  VertexId target = 0;
  /// Injection timestep. Closed-loop workloads inject everything at 0;
  /// the Poisson workload spreads arrivals over time (open loop).
  std::uint64_t inject_time = 0;
};

}  // namespace faultroute
