#include "traffic/workload.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "random/rng.hpp"

// analyze:allow-file-throw-safety(workload parse and validation errors raised during generation, before the delivery engine runs)
namespace faultroute {

namespace {

/// Message ids are 32-bit throughout the traffic pipeline; generating more
/// messages would silently alias ids (the old behaviour was a truncating
/// cast). Checked before any allocation, so the guard itself is cheap.
void check_message_count(std::uint64_t messages) {
  if (messages > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "generate_workload: message ids are 32-bit; at most 4294967295 messages, got " +
        std::to_string(messages));
  }
}

/// Fisher-Yates shuffle of [0, n) driven by `rng`.
std::vector<VertexId> random_permutation(Rng& rng, std::uint64_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  for (std::uint64_t i = n - 1; i > 0; --i) {
    const std::uint64_t j = uniform_below(rng, i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

std::vector<TrafficMessage> permutation_messages(Rng& rng, std::uint64_t n,
                                                 std::uint64_t messages) {
  check_message_count(messages);
  std::vector<TrafficMessage> out;
  out.reserve(messages);
  // Each round is one message per source under a fresh permutation; fixed
  // points carry no demand and are skipped.
  while (out.size() < messages) {
    const auto perm = random_permutation(rng, n);
    for (VertexId u = 0; u < n && out.size() < messages; ++u) {
      if (perm[u] == u) continue;
      out.push_back({static_cast<std::uint32_t>(out.size()), u, perm[u], 0});
    }
  }
  return out;
}

}  // namespace

WorkloadKind parse_workload(const std::string& name) {
  if (name == "permutation") return WorkloadKind::kPermutation;
  if (name == "random-pairs") return WorkloadKind::kRandomPairs;
  if (name == "hotspot") return WorkloadKind::kHotspot;
  if (name == "bisection") return WorkloadKind::kBisection;
  if (name == "poisson") return WorkloadKind::kPoisson;
  throw std::invalid_argument("unknown workload '" + name + "'");
}

std::string workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPermutation: return "permutation";
    case WorkloadKind::kRandomPairs: return "random-pairs";
    case WorkloadKind::kHotspot: return "hotspot";
    case WorkloadKind::kBisection: return "bisection";
    case WorkloadKind::kPoisson: return "poisson";
  }
  throw std::logic_error("unreachable workload kind");
}

std::vector<std::string> workload_names() {
  return {"permutation", "random-pairs", "hotspot", "bisection", "poisson"};
}

std::vector<TrafficMessage> generate_workload(const Topology& graph,
                                              const WorkloadConfig& config) {
  const std::uint64_t n = graph.num_vertices();
  if (n < 2) throw std::invalid_argument("generate_workload: need >= 2 vertices");
  check_message_count(config.messages);
  if (config.messages == 0) return {};
  Rng rng(config.seed);

  if (config.kind == WorkloadKind::kPermutation) {
    return permutation_messages(rng, n, config.messages);
  }

  std::vector<TrafficMessage> out;
  out.reserve(config.messages);
  double poisson_clock = 0.0;
  if (config.kind == WorkloadKind::kPoisson && !(config.arrival_rate > 0.0)) {
    throw std::invalid_argument("poisson workload requires arrival_rate > 0");
  }
  if (config.kind == WorkloadKind::kHotspot && config.hotspot_target >= n) {
    throw std::invalid_argument("hotspot target out of range");
  }
  for (std::uint64_t i = 0; i < config.messages; ++i) {
    TrafficMessage msg;
    msg.id = static_cast<std::uint32_t>(i);
    switch (config.kind) {
      case WorkloadKind::kRandomPairs:
      case WorkloadKind::kPoisson:
        msg.source = uniform_below(rng, n);
        do {
          msg.target = uniform_below(rng, n);
        } while (msg.target == msg.source);
        break;
      case WorkloadKind::kHotspot:
        msg.target = config.hotspot_target;
        msg.source = uniform_below(rng, n - 1);
        if (msg.source >= msg.target) ++msg.source;  // uniform over V \ {target}
        break;
      case WorkloadKind::kBisection:
        msg.source = uniform_below(rng, n / 2);
        msg.target = n / 2 + uniform_below(rng, n - n / 2);
        break;
      case WorkloadKind::kPermutation:
        throw std::logic_error("unreachable");
    }
    if (config.kind == WorkloadKind::kPoisson) {
      // Exponential inter-arrival times, floored onto the discrete clock.
      poisson_clock += -std::log1p(-uniform_double(rng)) / config.arrival_rate;
      msg.inject_time = static_cast<std::uint64_t>(poisson_clock);
    }
    out.push_back(msg);
  }
  return out;
}

}  // namespace faultroute
