#include "traffic/frontier_search.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/probe_context.hpp"
#include "graph/bfs_scratch.hpp"
#include "obs/run_metrics.hpp"

namespace faultroute {

FrontierMode parse_frontier_mode(const std::string& name) {
  if (name == "batch") return FrontierMode::kBatch;
  if (name == "permsg") return FrontierMode::kPerMessage;
  // analyze:allow-throw-safety(config parse error raised during scenario setup)
  throw std::invalid_argument("frontier mode must be 'batch' or 'permsg', got '" + name +
                              "'");
}

std::string frontier_mode_name(FrontierMode mode) {
  switch (mode) {
    case FrontierMode::kBatch:
      return "batch";
    case FrontierMode::kPerMessage:
      return "permsg";
  }
  return "batch";  // unreachable
}

namespace detail {

namespace {

/// Messages per block: one bit of the memo words per message.
constexpr std::size_t kBlockMessages = 64;

/// Block-shared probe memo: per undirected edge id, an epoch stamp, a 64-bit
/// membership word (bit m set = block message m has probed the edge), and
/// the environment's answer. Replaces 64 per-message memo tables with one
/// set of arrays cleared per block by a single epoch increment; answers can
/// be shared across the word because the percolation environment is fixed —
/// every message probing an edge gets the same bit back.
struct BlockMemo {
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint64_t> probed;  // valid iff stamp[e] == epoch
  std::vector<std::uint8_t> open;     // valid iff stamp[e] == epoch
  std::uint32_t epoch = 0;

  void begin_block(std::uint32_t num_edges) {
    if (stamp.size() < num_edges) {
      stamp.resize(num_edges, 0);  // analyze:allow-hot-alloc(grow-only pooled memo warm-up)
      probed.resize(num_edges, 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
      open.resize(num_edges, 0);  // analyze:allow-hot-alloc(same grow-only warm-up)
    }
    if (epoch == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 0;
    }
    ++epoch;
  }
};

/// One message's probe bookkeeping, replaying ProbeContext::probe_with
/// step-for-step on the dense path: total++ first, then the (per-message)
/// memo, then the budget gate, then exactly one environment lookup per
/// distinct (message, edge) pair — so censoring fires at the identical
/// probe and the shared cache sees the identical lookup sequence, keeping
/// cache_hits + cache_misses == total_distinct_probes intact. Locality
/// needs no tracking here: flood only probes from dequeued (hence reached)
/// vertices and bidirectional is an oracle router, so neither can trip the
/// check that ProbeContext would perform.
struct BatchProbe {
  const FlatAdjacency* flat;
  const EdgeSampler* env;
  bool dense_probe_state;  // selects the sampler entry point, as probe_with does
  std::optional<std::uint64_t> budget;
  BlockMemo* memo;
  std::uint64_t bit;  // this message's bit in the block words
  std::uint64_t total = 0;
  std::uint64_t distinct = 0;
  std::uint64_t expansions = 0;

  bool probe(VertexId v, int i) {
    ++total;
    const std::uint32_t e = flat->edge_id(v, i);
    const bool live = memo->stamp[e] == memo->epoch;
    if (live && (memo->probed[e] & bit) != 0) {
      return memo->open[e] != 0;  // this message's own re-probe: memoised
    }
    if (budget && distinct >= *budget) {
      // analyze:allow-throw-safety(probe-budget censoring signal, caught per message by the block executor)
      throw ProbeBudgetExceeded("probe budget exhausted");
    }
    const bool is_open = dense_probe_state
                             ? env->is_open_indexed(e, flat->edge_key(v, i))
                             : env->is_open(flat->edge_key(v, i));
    if (live) {
      memo->probed[e] |= bit;
    } else {
      memo->stamp[e] = memo->epoch;
      memo->probed[e] = bit;
    }
    memo->open[e] = is_open ? 1 : 0;
    ++distinct;
    return is_open;
  }
};

/// flood_router.cpp's flood_search, replayed over the CSR snapshot with the
/// worker's pooled BfsScratch as the dense parent marks: identical FIFO
/// queue, identical probe order (including the target-first reordering),
/// identical path reconstruction.
// analyze:allow-hot-alloc(pooled scratch queue retains capacity across the block; the path materializes one result)
std::optional<Path> flood_message(BatchProbe& probe, BfsScratch& s, const FlatAdjacency& flat,
                                  VertexId u, VertexId v, bool target_first) {
  s.begin(flat.num_vertices());
  s.mark(u, u);
  s.queue.push_back(u);
  std::size_t head = 0;
  while (head < s.queue.size()) {
    const VertexId x = s.queue[head++];
    ++probe.expansions;
    const std::uint64_t row = flat.row_begin(x);
    const int deg = flat.degree(x);
    int target_index = -1;
    if (target_first) target_index = edge_index_of(flat, x, v);
    for (int step = (target_index >= 0 ? -1 : 0); step < deg; ++step) {
      const int i = (step == -1) ? target_index : step;
      if (step != -1 && i == target_index && target_index >= 0) continue;  // done already
      const VertexId y = flat.neighbor_at(row + static_cast<std::uint64_t>(i));
      if (s.seen(y)) continue;
      if (!probe.probe(x, i)) continue;
      s.mark(y, x);
      if (y == v) {
        Path path;
        for (VertexId z = v;; z = s.parent[z]) {
          path.push_back(z);
          if (z == u) break;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      s.queue.push_back(y);
    }
  }
  return std::nullopt;
}

// analyze:allow-hot-alloc(result-path materialization bounded by chain length)
Path chain_to_root(const BfsScratch& s, VertexId from) {
  Path path;
  for (VertexId x = from;; x = s.parent[x]) {
    path.push_back(x);
    if (s.parent[x] == x) break;
  }
  return path;  // from .. root
}

/// bidirectional_router.cpp's bidirectional_search, replayed likewise: the
/// two balls live in the worker's two scratches, the smaller live frontier
/// expands first (ties: u side), and the meet/join/simplify steps match the
/// router verbatim.
// analyze:allow-hot-alloc(pooled scratch queues retain capacity across the block; join materializes one result path)
std::optional<Path> bidirectional_message(BatchProbe& probe, BfsScratch& su, BfsScratch& sv,
                                          const FlatAdjacency& flat, VertexId u, VertexId v) {
  const std::uint64_t n = flat.num_vertices();
  su.begin(n);
  sv.begin(n);
  su.mark(u, u);
  su.queue.push_back(u);
  sv.mark(v, v);
  sv.queue.push_back(v);
  std::size_t head_u = 0;
  std::size_t head_v = 0;
  const auto live_u = [&] { return su.queue.size() - head_u; };
  const auto live_v = [&] { return sv.queue.size() - head_v; };

  const auto join = [&](VertexId meeting, VertexId via_u_side) {
    Path left = chain_to_root(su, via_u_side);
    std::reverse(left.begin(), left.end());  // u .. via_u_side
    const Path right = chain_to_root(sv, meeting);  // meeting .. v
    left.insert(left.end(), right.begin(), right.end());
    return simplify_walk(left);
  };

  while (live_u() > 0 || live_v() > 0) {
    const bool expand_u = live_u() > 0 && (live_v() == 0 || live_u() <= live_v());
    BfsScratch& mine = expand_u ? su : sv;
    BfsScratch& other = expand_u ? sv : su;
    std::size_t& head = expand_u ? head_u : head_v;
    const VertexId x = mine.queue[head++];
    ++probe.expansions;
    const std::uint64_t row = flat.row_begin(x);
    const int deg = flat.degree(x);
    for (int i = 0; i < deg; ++i) {
      const VertexId y = flat.neighbor_at(row + static_cast<std::uint64_t>(i));
      if (mine.seen(y)) continue;
      if (!probe.probe(x, i)) continue;
      if (other.seen(y)) {
        // The two balls touch along edge (x, y).
        if (expand_u) return join(y, x);
        return join(x, y);
      }
      mine.mark(y, x);
      mine.queue.push_back(y);
    }
  }
  return std::nullopt;
}

}  // namespace

// analyze:hot-root(batched frontier block executor: 64-message bitset sweeps)
void route_frontier_batched(const Topology& graph, const EdgeSampler& env,
                            const std::vector<TrafficMessage>& messages,
                            const TrafficConfig& config, const FlatAdjacency& flat,
                            BatchSearchKind kind, bool probe_target_first,
                            std::vector<MessageOutcome>& outcomes, std::vector<Path>& paths) {
  (void)graph;
  obs::CounterRegistry* counters =
      config.metrics != nullptr ? &config.metrics->counters() : nullptr;
  const obs::CounterRegistry::CounterId probe_calls =
      counters != nullptr ? counters->id("traffic.routing.probe_calls") : 0;
  const obs::CounterRegistry::CounterId expansions =
      counters != nullptr ? counters->id("traffic.routing.bfs_expansions") : 0;
  // Batch-only bookkeeping, in the mould of the reference engine's
  // channels == 0: these two exist only in batch mode and are therefore
  // outside the cross-mode identity contract.
  const obs::CounterRegistry::CounterId batched =
      counters != nullptr ? counters->id("traffic.routing.frontier.batched_messages") : 0;
  const obs::CounterRegistry::CounterId blocks =
      counters != nullptr ? counters->id("traffic.routing.frontier.blocks") : 0;
  obs::PhaseProfiler* profiler =
      config.metrics != nullptr ? &config.metrics->profiler() : nullptr;

  struct WorkerScratch {
    BlockMemo memo;
    BfsScratch search_u;
    BfsScratch search_v;
  };

  // Blocks are the parallel unit (disjoint message ranges); messages within
  // a block run sequentially so they can share the memo words. Results are
  // per-message functions of the fixed environment, so neither the block
  // split nor the thread count is observable.
  const std::size_t num_blocks = (messages.size() + kBlockMessages - 1) / kBlockMessages;
  parallel_index_loop(num_blocks, config.threads, [&] {
    const std::shared_ptr<WorkerScratch> scratch = std::make_shared<WorkerScratch>();
    const std::shared_ptr<obs::PhaseProfiler::Scope> span =
        std::make_shared<obs::PhaseProfiler::Scope>(profiler, "route-worker");
    return [&, scratch, span](std::size_t b) {
      const std::size_t begin = b * kBlockMessages;
      const std::size_t end = std::min(begin + kBlockMessages, messages.size());
      scratch->memo.begin_block(flat.num_edge_ids());
      if (counters != nullptr) {
        counters->add(blocks, 1);
        counters->add(batched, end - begin);
      }
      for (std::size_t i = begin; i < end; ++i) {
        const TrafficMessage& msg = messages[i];
        MessageOutcome& out = outcomes[i];
        out.message = msg;
        if (msg.source == msg.target) {
          out.routed = true;
          paths[i] = Path{msg.source};
          continue;
        }
        BatchProbe probe{&flat,
                         &env,
                         config.dense_probe_state,
                         config.probe_budget,
                         &scratch->memo,
                         1ull << (i - begin)};
        std::optional<Path> path;
        try {
          path = kind == BatchSearchKind::kFlood
                     ? flood_message(probe, scratch->search_u, flat, msg.source, msg.target,
                                     probe_target_first)
                     : bidirectional_message(probe, scratch->search_u, scratch->search_v,
                                             flat, msg.source, msg.target);
        } catch (const ProbeBudgetExceeded&) {
          out.censored = true;
        }
        out.distinct_probes = probe.distinct;
        if (counters != nullptr) {
          counters->add(probe_calls, probe.total);
          counters->add(expansions, probe.expansions);
        }
        if (path) {
          out.routed = true;
          paths[i] = simplify_walk(*path);
          out.path_edges = path_length(paths[i]);
        }
      }
    };
  });
}

}  // namespace detail

}  // namespace faultroute
