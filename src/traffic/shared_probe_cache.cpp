#include "traffic/shared_probe_cache.hpp"

#include "random/splitmix64.hpp"

namespace faultroute {

SharedProbeCache::SharedProbeCache(const EdgeSampler& base) : base_(base) {}

bool SharedProbeCache::is_open(EdgeKey key) const {
  Shard& shard = shards_[mix64(key) % kShards];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.memo.find(key);
    if (it != shard.memo.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Query outside the lock: the sampler is pure, so a racing double-compute
  // yields the same value and the second insert is a no-op.
  const bool open = base_.is_open(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.memo.emplace(key, open);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return open;
}

std::uint64_t SharedProbeCache::unique_edges() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.memo.size();
  }
  return total;
}

}  // namespace faultroute
