#include "traffic/shared_probe_cache.hpp"

#include <stdexcept>
#include <string>

#include "graph/channel_index.hpp"
#include "random/splitmix64.hpp"

namespace faultroute {

SharedProbeCache::SharedProbeCache(const EdgeSampler& base, const Topology& graph)
    : base_(base),
      graph_(graph),
      channels_(graph.channel_index()),
      states_(new std::atomic<std::uint8_t>[channels_.num_edge_ids()]) {
  // Value-initialise to kUnknown; new[] of atomics leaves them
  // default-initialised (indeterminate) otherwise.
  for (std::uint32_t e = 0; e < channels_.num_edge_ids(); ++e) {
    states_[e].store(kUnknown, std::memory_order_relaxed);
  }
}

bool SharedProbeCache::is_open_indexed(std::uint32_t edge_id, EdgeKey key) const {
  std::atomic<std::uint8_t>& slot = states_[edge_id];
  std::uint8_t state = slot.load(std::memory_order_relaxed);
  if (state != kUnknown) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return state == kOpen;
  }
  // Resolve outside any critical section: the sampler is pure, so a racing
  // double-compute yields the same value and the CAS loser's work is merely
  // wasted, never wrong. Relaxed ordering suffices — the published byte is
  // the entire message, a pure function of (sampler, key).
  const bool open = base_.is_open(key);
  std::uint8_t expected = kUnknown;
  if (slot.compare_exchange_strong(expected, open ? kOpen : kClosed,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return open;
  }
  // Lost the publication race: the edge was already discovered, so this
  // probe is a hit — counting it as a miss is exactly the double-count bug
  // the sharded-map cache had (misses_ incremented even when emplace found
  // an existing entry).
  hits_.fetch_add(1, std::memory_order_relaxed);
  return expected == kOpen;
}

bool SharedProbeCache::is_open(EdgeKey key) const {
  // Key-only callers (path verification helpers, tests) pay an O(degree)
  // scan of one endpoint's incident slots to recover the dense id.
  const EdgeEndpoints ends = graph_.endpoints(key);
  const int deg = graph_.degree(ends.a);
  for (int i = 0; i < deg; ++i) {
    if (graph_.edge_key(ends.a, i) == key) {
      return is_open_indexed(channels_.edge_id_of(channels_.channel_of(ends.a, i)), key);
    }
  }
  // analyze:allow-throw-safety(edge-key precondition guard; surfaced via first_error)
  throw std::invalid_argument("SharedProbeCache::is_open: key " + std::to_string(key) +
                              " is not an edge key of " + graph_.name());
}

// ------------------------------------------------------- ShardedProbeCache

ShardedProbeCache::ShardedProbeCache(const EdgeSampler& base) : base_(base) {}

bool ShardedProbeCache::is_open(EdgeKey key) const {
  Shard& shard = shards_[mix64(key) % kShards];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.memo.find(key);
    if (it != shard.memo.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Query outside the lock: the sampler is pure, so a racing double-compute
  // yields the same value and the second insert is a no-op.
  const bool open = base_.is_open(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  // analyze:allow-hot-alloc(one memo insert per distinct edge is the dedup that makes hit counts exact)
  const bool inserted = shard.memo.emplace(key, open).second;
  // Count the miss only on actual insert — the loser of a first-probe race
  // finds the winner's entry and is a hit, not a second miss.
  (inserted ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  return open;
}

std::uint64_t ShardedProbeCache::unique_edges() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.memo.size();
  }
  return total;
}

}  // namespace faultroute
