// The pre-rewrite delivery engine, kept as a differential-testing oracle for
// the event-driven engine in traffic_engine.cpp. Phase 1 (routing) is shared
// code; phase 2 below is the original container-based simulation — std::map
// admissions timeline, std::set busy list, per-channel std::deque queues —
// preserved behaviour-for-behaviour, including the unbounded growth of the
// `queues` table (drained entries are never erased), which is exactly why it
// was replaced. tests/test_traffic_golden.cpp holds both engines bit-for-bit
// equal; bench/bench_delivery.cpp measures the gap.

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/edge_load.hpp"
#include "obs/run_metrics.hpp"
#include "random/splitmix64.hpp"
#include "traffic/routing_phase.hpp"
#include "traffic/traffic_engine.hpp"

namespace faultroute {

namespace {

/// A directed transmission channel: the undirected edge `key` traversed out
/// of vertex `from`. The two directions of an edge queue independently.
using ChannelKey = std::pair<EdgeKey, VertexId>;

struct ChannelHash {
  std::size_t operator()(const ChannelKey& c) const noexcept {
    return static_cast<std::size_t>(hash_pair(c.first, c.second));
  }
};

/// One message's routed journey: the channel of every hop, in order.
struct Journey {
  std::vector<ChannelKey> hops;
  std::size_t next_hop = 0;
};

}  // namespace

TrafficResult run_traffic_reference(const Topology& graph, const EdgeSampler& sampler,
                                    const RouterFactory& make_router,
                                    const std::vector<TrafficMessage>& messages,
                                    const TrafficConfig& config) {
  if (config.edge_capacity == 0) {
    throw std::invalid_argument("run_traffic: edge_capacity must be >= 1");
  }
  if (messages.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "run_traffic: message ids are 32-bit; at most 4294967295 messages per run");
  }
  TrafficResult result;
  result.messages = messages.size();
  result.outcomes.resize(messages.size());
  const auto phase_start = std::chrono::steady_clock::now();

  // ---------------------------------------------------------- phase 1: route
  const auto routed =
      detail::route_and_validate(graph, sampler, make_router, messages, config, result);

  std::vector<Journey> journeys(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const auto& journey = routed[i];
    journeys[i].hops.reserve(journey.slots.size());
    for (std::size_t step = 0; step < journey.slots.size(); ++step) {
      journeys[i].hops.emplace_back(
          graph.edge_key(journey.path[step], journey.slots[step]), journey.path[step]);
    }
  }
  const auto delivery_start = std::chrono::steady_clock::now();
  if (config.timings) {
    config.timings->routing_ms =
        std::chrono::duration<double, std::milli>(delivery_start - phase_start).count();
  }

  // -------------------------------------------------------- phase 2: deliver
  // Discrete-time store-and-forward: at each step, first admit arriving
  // messages to their next channel queue (ordered by message id, so the
  // simulation is deterministic), then every channel transmits up to
  // `edge_capacity` messages, which arrive at the far endpoint next step.
  // The differential oracle preserves the pre-rewrite containers verbatim.
  // lint:allow-hash(retained legacy reference engine)
  std::unordered_map<ChannelKey, std::deque<std::uint32_t>, ChannelHash> queues;
  std::set<ChannelKey> busy;  // ordered: deterministic iteration
  std::map<std::uint64_t, std::vector<std::uint32_t>> admissions;  // time -> ids
  // lint:allow-hash(retained legacy reference engine, see above)
  std::unordered_map<EdgeKey, std::uint64_t> edge_load;

  std::uint64_t in_flight = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (!result.outcomes[i].routed) continue;
    admissions[messages[i].inject_time].push_back(static_cast<std::uint32_t>(i));
    ++in_flight;
  }

  std::uint64_t t = 0;
  std::uint64_t steps = 0;
  while (in_flight > 0 && (!admissions.empty() || !busy.empty())) {
    if (busy.empty()) t = admissions.begin()->first;  // skip idle gaps
    if (config.max_steps != 0 && steps >= config.max_steps) break;
    ++steps;

    const auto due = admissions.find(t);
    if (due != admissions.end()) {
      std::sort(due->second.begin(), due->second.end());
      result.admission_events += due->second.size();
      for (const std::uint32_t id : due->second) {
        Journey& journey = journeys[id];
        if (journey.next_hop == journey.hops.size()) {
          MessageOutcome& out = result.outcomes[id];
          out.delivered = true;
          out.finish_time = t;
          out.queueing_delay = t - out.message.inject_time - out.path_edges;
          --in_flight;
          continue;
        }
        const ChannelKey& channel = journey.hops[journey.next_hop];
        queues[channel].push_back(id);
        busy.insert(channel);
      }
      admissions.erase(due);
    }
    result.peak_active_channels =
        std::max<std::uint64_t>(result.peak_active_channels, busy.size());

    std::vector<ChannelKey> drained;
    for (const ChannelKey& channel : busy) {
      std::deque<std::uint32_t>& queue = queues[channel];
      for (std::uint64_t slot = 0; slot < config.edge_capacity && !queue.empty(); ++slot) {
        const std::uint32_t id = queue.front();
        queue.pop_front();
        ++journeys[id].next_hop;
        ++edge_load[channel.first];
        ++result.transmissions;
        admissions[t + 1].push_back(id);
      }
      if (queue.empty()) drained.push_back(channel);
    }
    for (const ChannelKey& channel : drained) busy.erase(channel);
    ++t;
  }
  result.stranded = in_flight;
  result.sim_steps = steps;

  // ------------------------------------------------------------- aggregation
  const EdgeLoadStats congestion = summarize_edge_load(edge_load);
  result.max_edge_load = congestion.max_load;
  result.edges_used = congestion.edges_used;
  result.mean_edge_load = congestion.mean_load;

  double delay_sum = 0.0;
  double hops_sum = 0.0;
  for (const MessageOutcome& out : result.outcomes) {
    if (!out.delivered) continue;
    ++result.delivered;
    result.makespan = std::max(result.makespan, out.finish_time);
    delay_sum += static_cast<double>(out.queueing_delay);
    result.max_queueing_delay = std::max(result.max_queueing_delay, out.queueing_delay);
    hops_sum += static_cast<double>(out.path_edges);
  }
  if (result.delivered > 0) {
    result.mean_queueing_delay = delay_sum / static_cast<double>(result.delivered);
    result.mean_path_edges = hops_sum / static_cast<double>(result.delivered);
  }
  if (config.timings) {
    config.timings->delivery_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  delivery_start)
            .count();
  }
  // Same counter harvest as run_traffic, so --metrics is engine-agnostic.
  // The oracle gets no phase scopes or delivery sampling: its delivery loop
  // exists to be diffed against, not to be observed.
  if (config.metrics != nullptr) detail::record_traffic_counters(*config.metrics, result);
  return result;
}

}  // namespace faultroute
