#pragma once

#include <vector>

#include "core/path.hpp"
#include "traffic/traffic_engine.hpp"

namespace faultroute::detail {

/// One message's routed journey in topology-slot form: hop k leaves vertex
/// `path[k]` through incident slot `slots[k]` (so the channel of the hop is
/// recoverable both as a ChannelIndex id and as an (edge key, tail) pair).
/// Empty for messages that did not survive routing/validation.
struct RoutedJourney {
  Path path;               // simplified, validated vertex walk
  std::vector<int> slots;  // slots[k]: incident slot of path[k] -> path[k+1]
};

/// Phase 1 of run_traffic, shared verbatim by the event-driven engine and
/// the legacy reference engine so their delivery phases start from an
/// identical routed batch.
///
/// Routes every message (thread-parallel, deterministic), verifies paths when
/// config.verify_paths is on, resolves every hop's incident slot, and fills
/// the routing side of `result`: outcomes (message/routed/censored/
/// distinct_probes/path_edges), routed/failed_routing/censored/invalid_paths,
/// total_distinct_probes, and unique_edges_probed. `result.outcomes` must
/// already be sized to messages.size().
[[nodiscard]] std::vector<RoutedJourney> route_and_validate(
    const Topology& graph, const EdgeSampler& sampler, const RouterFactory& make_router,
    const std::vector<TrafficMessage>& messages, const TrafficConfig& config,
    TrafficResult& result);

/// Harvests a finished run's aggregate fields into `metrics`'s counter
/// registry under the traffic.* namespace (routing partition, probe/cache
/// economics, delivery event counts and gauges). Shared by both engines so
/// --metrics reports the same counters regardless of --engine.
void record_traffic_counters(obs::RunMetrics& metrics, const TrafficResult& result);

}  // namespace faultroute::detail
