#pragma once

#include <vector>

#include "core/path.hpp"
#include "traffic/traffic_engine.hpp"

namespace faultroute::detail {

/// Which search-router family the batched frontier executor replays. Only
/// families whose per-message searches the executor reproduces move-for-move
/// are eligible; everything else routes per message (with metric routers
/// accelerated by the DistanceOracle instead — see routing_phase.cpp).
enum class BatchSearchKind {
  kFlood,          ///< FloodRouter (plain or target-first)
  kBidirectional,  ///< BidirectionalBfsRouter
};

/// The FrontierMode::kBatch routing loop for flood / bidirectional batches:
/// messages are processed in blocks of 64 per worker, sharing one
/// epoch-stamped per-edge probe-memo table whose 64-bit words carry one
/// membership bit per block message (so "has message m probed edge e" is a
/// single AND), with per-message parent marks and queues pooled in the
/// worker's scratch. Every observable — outcomes, probe/expansion counts,
/// censoring points, shared-cache hit/miss totals, and the returned paths —
/// is bit-identical to route_all driving the real router per message
/// (tests/test_frontier_search.cpp): each message's search runs in exactly
/// the original FIFO order, and each (message, edge) first probe still
/// reaches the shared environment exactly once. Requires the flat adjacency
/// path (the caller falls back to per-message routing otherwise).
///
/// `env` is the same (possibly cache-wrapped) sampler route_all would probe
/// through; `outcomes` and `paths` must be sized to messages.size().
void route_frontier_batched(const Topology& graph, const EdgeSampler& env,
                            const std::vector<TrafficMessage>& messages,
                            const TrafficConfig& config, const FlatAdjacency& flat,
                            BatchSearchKind kind, bool probe_target_first,
                            std::vector<MessageOutcome>& outcomes,
                            std::vector<Path>& paths);

}  // namespace faultroute::detail
